"""Discrete-event simulation engine.

This module is the foundation of the whole reproduction: every hardware
and software component (cores, caches, interconnects, NICs, the kernel)
is expressed as a set of simulation processes exchanging events on a
shared virtual clock.

The design follows the classic generator-based style (as popularised by
SimPy) but is implemented from scratch so the reproduction has no
third-party runtime dependencies:

* :class:`Simulator` owns the event queues and the virtual clock.
* :class:`Event` is a one-shot occurrence that processes can wait on.
* :class:`Process` wraps a Python generator; each ``yield`` suspends the
  process until the yielded event fires.
* :class:`Timeout` is an event that fires after a fixed delay; pending
  timeouts can be :meth:`~Timeout.cancel`-ed.

Hot-path layout (everything here is exercised millions of times per
experiment):

* All event classes use ``__slots__`` — no per-event ``__dict__``.
* Events scheduled *at the current instant* go to plain FIFOs (one for
  URGENT resumptions, one for NORMAL same-time events) instead of the
  timer structure, so zero-delay wake-up chains never pay any queue
  discipline.  Only future-dated events (real timers) touch the wheel.
* Future-dated events live in a hierarchical **timer wheel**: four
  levels of 256 buckets (1 ns, 256 ns, 64 us and 16.7 ms per slot),
  plus an overflow list for timers more than ~4.3 s ahead.  Insertion
  is an O(1) list append; expiry drains one bucket at a time into a
  sorted *due* list, so the per-event pop is an index increment instead
  of an O(log n) heap sift.  Occupied buckets are tracked in per-level
  bitmaps so advancing to the next timer is a find-lowest-set-bit, not
  a slot scan.
* Cancelled timeouts are removed lazily: they stay queued as
  tombstones, are skipped on pop, and the wheel is swept when
  tombstones dominate — so retry/Tryagain-style workloads that arm and
  abandon guard timers don't grow the wheel without bound.

Dispatch order is the engine's contract: events run in strict
``(time, priority, sequence)`` order, and the wheel preserves it
exactly — buckets are visited in time order, each bucket is sorted by
``(time, sequence)`` before dispatch, and same-instant NORMAL events
are merged with due timers by sequence number.  The differential
property test in ``tests/properties/test_wheel_differential.py`` races
this engine against a reference heap implementation to prove the order
never diverges.

:mod:`repro.sim.profile` reports the event counters, wheel occupancy
and cascade statistics the simulator maintains.

Time is measured in **nanoseconds** (floats).  Helper constants for
other units live in :mod:`repro.sim.clock`.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "Simulator",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation API (e.g. double-trigger)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries an arbitrary payload describing why
    the interrupt happened (for example, an IPI descriptor in the OS
    model).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Priorities for events scheduled at the same timestamp.  Urgent events
# (process resumptions) run before normal events so that chains of
# zero-delay wake-ups complete before the clock is allowed to advance.
URGENT = 0
NORMAL = 1

#: Per-level slot count of the timer wheel (2**_WHEEL_BITS buckets).
_WHEEL_BITS = 8
_WHEEL_SLOTS = 1 << _WHEEL_BITS
_WHEEL_MASK = _WHEEL_SLOTS - 1
#: Single-bit masks, precomputed so bucket bookkeeping never pays a
#: shift allocation on the insert path.
_BIT = tuple(1 << i for i in range(_WHEEL_SLOTS))


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*, becomes *triggered* when :meth:`succeed`
    or :meth:`fail` is called, and is *processed* once the simulator has
    run its callbacks.  Processes wait on events by ``yield``-ing them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_ok", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._ok: Optional[bool] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (or exception) attached."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have been dispatched."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        if not self._ok:
            raise SimulationError("event failed; check .exception")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        # The slot may be unset on a pending Timeout (see Timeout.__init__).
        try:
            return self._exception
        except AttributeError:
            return None

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self.sim.now, priority, self)
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on the
        event.
        """
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._ok = False
        self._exception = exc
        # Timeouts leave _defused unset at construction; a failed event
        # must have it readable before dispatch.
        self._defused = False
        self.sim._enqueue(self.sim.now, priority, self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event fires.

        If the event has already been processed the callback runs
        immediately, which lets late waiters join without racing.
        """
        if self.callbacks is None:
            if self._ok is None:
                raise SimulationError("cannot wait on a cancelled timeout")
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.processed:
            state = "cancelled" if self._ok is None else "processed"
        elif self.triggered:
            state = "triggered"
        return f"<{type(self).__name__} {state} at t={self.sim.now}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation.

    Unlike a plain event, a timeout is *scheduled* at construction but
    only *triggers* when the simulator dispatches it — ``triggered``
    stays False (and ``.value`` raises) until the delay has actually
    elapsed.  A pending timeout can be cancelled.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Event.__init__ is inlined (the _exception/_defused slots are
        # left unset — they are only ever read after fail(), which
        # assigns them).  The value is staged in _value but _ok stays
        # None: the simulator marks the event triggered when the delay
        # elapses.  Simulator.timeout is the hot-path twin of this
        # constructor with the wheel insert inlined as well; keep the
        # two in sync.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = None
        self.delay = delay
        now = sim.now
        when = now + delay
        seq = sim._seq
        sim._seq = seq + 1
        if when == now:
            sim._stat_norm_fifo += 1
            sim._normal.append((seq, self))
        else:
            sim._insert_future(when, seq, self)

    def cancel(self) -> bool:
        """Cancel a pending timeout so it never fires.

        Returns True if the timeout was cancelled, False if it had
        already fired (cancelling a fired timer is a harmless no-op,
        which makes ``guard.cancel()`` after a race safe).  The queue
        entry is removed lazily (tombstoned); its callbacks never run.
        A process must not cancel a timeout it is itself blocked on —
        it would never be resumed.
        """
        if self._ok is not None or self.callbacks is None:
            return False
        self.callbacks = None
        sim = self.sim
        n_cancelled = sim._n_cancelled + 1
        sim._n_cancelled = n_cancelled
        sim._stat_cancels += 1
        # Tombstone hygiene: once cancelled timers dominate the wheel,
        # sweep every occupied bucket in one O(n) pass (amortised
        # against the >= n/2 cancellations that triggered it).  The
        # pending count is derived (see pending_timers) so the insert
        # path never maintains it.
        if n_cancelled > 64 and n_cancelled + n_cancelled > (
                sim._seq - sim._stat_norm_fifo - sim._departed
                + len(sim._due) - sim._due_i):
            sim._compact()
        return True

    @property
    def cancelled(self) -> bool:
        return self._ok is None and self.callbacks is None


class _Initialize(Event):
    """Internal event used to start a process at creation time."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        Event.__init__(self, sim)
        self.callbacks.append(process._resume_cb)
        sim._enqueue(sim.now, URGENT, self)


class Process(Event):
    """A simulation process wrapping a generator.

    The process object doubles as an event that fires when the generator
    terminates; its value is the generator's return value.  Waiting on a
    process therefore means "wait until it finishes".
    """

    __slots__ = ("name", "_generator", "_waiting_on", "_send", "_throw",
                 "_resume_cb")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        try:
            # Bound methods cached once: _resume runs per yield of every
            # process and saves an attribute hop on each, and appending
            # the cached _resume avoids materialising a fresh bound
            # method per yield.
            self._send = generator.send
            self._throw = generator.throw
        except AttributeError:
            raise TypeError(
                f"Process needs a generator, got {generator!r}"
            ) from None
        Event.__init__(self, sim)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._resume_cb = self._resume
        _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The interrupt is delivered asynchronously (as an urgent event at
        the current time) so the caller's own execution is not nested
        inside the target's frame.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        if self._waiting_on is self:
            raise SimulationError("a process cannot interrupt itself")
        exc = Interrupt(cause)
        event = Event(self.sim)
        event._ok = False
        event._exception = exc
        event._defused = True  # handled by the interrupted process
        event.callbacks.append(self._resume_cb)
        self.sim._enqueue(self.sim.now, URGENT, event)

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        if self._ok is not None:
            # The process finished before a queued interrupt arrived;
            # drop the stale resumption.
            return
        # _waiting_on deliberately keeps its stale value while the
        # generator runs: only interrupt() consults it, and a process
        # cannot be interrupted from inside its own frame.
        try:
            if event._ok:
                target = self._send(event._value)
            else:
                event._defused = True
                target = self._throw(event._exception)
        except StopIteration as stop:
            self.succeed(stop.value, priority=URGENT)
            return
        except BaseException as exc:
            self.fail(exc, priority=URGENT)
            return

        # Probe the two attributes every Event carries instead of an
        # isinstance check; non-events fail the probe.
        try:
            foreign = target.sim is not self.sim
            callbacks = target.callbacks
        except AttributeError:
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            ) from None
        if foreign:
            raise SimulationError("cannot wait on an event from another simulator")
        self._waiting_on = target
        # add_callback, inlined: this runs once per yield of every
        # process, so the extra call frame is worth saving.
        if callbacks is None:
            if target._ok is None:
                raise SimulationError("cannot wait on a cancelled timeout")
            self._resume(target)
        else:
            callbacks.append(self._resume_cb)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_fired", "_check_cb")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        Event.__init__(self, sim)
        self.events = list(events)
        self._fired = 0
        if not self.events:
            self.succeed({})
            return
        # One bound method shared by every registration, so wide
        # fan-ins don't allocate per-event callables and _detach can
        # remove registrations by identity.  Registration is inlined
        # (add_callback semantics, minus the per-event method call):
        # wide fan-ins register hundreds of callbacks per condition.
        check = self._check_cb = self._check
        own_sim = self.sim
        for event in self.events:
            if event.sim is not own_sim:
                raise SimulationError("condition spans multiple simulators")
            callbacks = event.callbacks
            if callbacks is None:
                if event._ok is None:
                    raise SimulationError("cannot wait on a cancelled timeout")
                check(event)
            else:
                callbacks.append(check)

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e._ok}

    def _detach(self) -> None:
        """Unregister _check from every still-pending member event.

        Once the condition has fired, the losing events' callbacks
        would only ever hit the dead ``self._ok is not None`` branch;
        leaving them registered accumulates garbage on wide fan-ins and
        keeps the condition (and everything it captured) alive as long
        as the slowest loser.  Cancelled timeouts (callbacks is None)
        and already-processed events — including the member whose
        firing satisfied the condition (its callbacks are nulled for
        the dispatch in progress) — need no detach.
        """
        check = self._check_cb
        for event in self.events:
            callbacks = event.callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(check)
                except ValueError:
                    pass

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            return
        if not event._ok:
            event._defused = True
            self._detach()
            self.fail(event._exception)
            return
        self._fired += 1
        if self._satisfied():
            self._detach()
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when any one of the given events fires."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._fired >= 1


class AllOf(_Condition):
    """Fires when all of the given events have fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._fired == len(self.events)


class Simulator:
    """The event loop: a virtual clock, two FIFOs and a timer wheel.

    Scheduling invariant: events run in ``(time, priority, sequence)``
    order.  Events scheduled at the *current* instant are kept out of
    the wheel — URGENT ones (process resumptions, which every trigger
    in the tree schedules at ``now``) in a plain FIFO whose append
    order *is* sequence order, NORMAL same-instant ones in a second
    FIFO that is merged with same-timestamp due timers by sequence
    number.  The wheel holds only future-dated events, i.e. real
    timers.

    Wheel layout: ``_l0``…``_l3`` are four arrays of 256 buckets.  A
    timer lands in the finest level whose aligned window contains both
    its tick (``int(when)``) and the wheel cursor ``_cur``; timers more
    than ``256**4`` ticks ahead wait in ``_overflow``.  ``_bm0``…``_bm3``
    are occupancy bitmaps (bit *i* set ⇔ bucket *i* non-empty).
    Advancing time means draining the lowest set bucket of the lowest
    occupied level — cascading it down a level if it is not yet at
    level 0 — then sorting that bucket by ``(time, seq)`` into ``_due``,
    which ``run`` consumes by index.  Timers created at-or-behind the
    cursor (sub-tick delays, or after a bounded run parked the clock
    below an already-drained bucket) are merge-inserted into the live
    ``_due`` list so dispatch order never depends on cursor position.
    """

    __slots__ = (
        "now", "_urgent", "_normal", "_seq", "_n_cancelled",
        "_cur", "_due", "_due_i", "_l0", "_l1", "_l2", "_l3",
        "_bm0", "_bm1", "_bm2", "_bm3", "_overflow", "_departed", "_gen",
        "_stat_dispatched", "_stat_wheel_max", "_stat_norm_fifo",
        "_stat_urgent_fifo", "_stat_cancels", "_stat_sweeps",
        "_stat_drains", "_stat_cascades", "__weakref__",
    )

    def __init__(self):
        self.now: float = 0.0
        self._urgent: deque[Event] = deque()
        self._normal: deque[tuple[int, Event]] = deque()
        #: next sequence number; consumed by every wheel push and every
        #: NORMAL same-instant append (urgent FIFO order needs none).
        self._seq = 0
        #: live tombstones (cancelled timeouts still queued)
        self._n_cancelled = 0
        # -- timer wheel --------------------------------------------------
        #: wheel cursor: every tick <= _cur has been drained already
        self._cur = 0
        #: the drained-and-sorted batch run() is currently consuming
        self._due: list[tuple[float, int, Event]] = []
        self._due_i = 0
        self._l0: list[list[tuple[float, int, Event]]] = [
            [] for _ in range(_WHEEL_SLOTS)
        ]
        # Coarser levels are allocated on first use: most simulators
        # never schedule further than 256 ticks ahead at once.
        self._l1: Optional[list[list[tuple[float, int, Event]]]] = None
        self._l2: Optional[list[list[tuple[float, int, Event]]]] = None
        self._l3: Optional[list[list[tuple[float, int, Event]]]] = None
        self._bm0 = 0
        self._bm1 = 0
        self._bm2 = 0
        self._bm3 = 0
        self._overflow: list[tuple[float, int, Event]] = []
        #: entries that have *left* bucket/overflow residency (drained
        #: into _due, merge-inserted straight into _due, or swept by
        #: _compact).  Resident population is derived as
        #: wheel pushes (_seq - _stat_norm_fifo) minus _departed, so
        #: the per-insert hot path maintains no occupancy counter.
        self._departed = 0
        #: bumped by every out-of-band mutation of the due batch
        #: (refill, sweep, merge-insert, peek/_pop purge) so run()'s
        #: same-instant batch loop can detect perturbation with one
        #: integer compare.
        self._gen = 0
        # -- profiling counters (see repro.sim.profile) ----------------
        # Wheel pushes are not counted on the push path: they are
        # derived as _seq - _stat_norm_fifo, since those are the only
        # two consumers of sequence numbers.
        self._stat_dispatched = 0
        self._stat_wheel_max = 0
        self._stat_norm_fifo = 0
        self._stat_urgent_fifo = 0
        self._stat_cancels = 0
        self._stat_sweeps = 0
        self._stat_drains = 0
        self._stat_cascades = 0

    @property
    def pending_timers(self) -> int:
        """Future-dated events still queued (tombstones included).

        The live-probe equivalent of the old heap's ``len()``: wheel
        residents (pushes minus departures) plus the unconsumed tail of
        the due batch.
        """
        return (self._seq - self._stat_norm_fifo - self._departed
                + len(self._due) - self._due_i)

    # -- scheduling ---------------------------------------------------

    def _enqueue(self, when: float, priority: int, event: Event) -> None:
        if when == self.now:
            # Same-instant fast path: no wheel traffic.  Everything in
            # the tree schedules URGENT events at the current instant,
            # so the urgent FIFO needs no sequence numbers; the NORMAL
            # FIFO keeps them to merge with same-timestamp due timers.
            if priority == URGENT:
                self._stat_urgent_fifo += 1
                self._urgent.append(event)
            else:
                seq = self._seq
                self._seq = seq + 1
                self._stat_norm_fifo += 1
                self._normal.append((seq, event))
            return
        # Future-dated events are always NORMAL (succeed/fail stamp the
        # current instant; only timers schedule ahead), so wheel entries
        # carry no priority field: (when, seq, event).
        seq = self._seq
        self._seq = seq + 1
        self._insert_future(when, seq, event)

    def _insert_future(self, when: float, seq: int, event: Event) -> None:
        """File ``(when, seq, event)`` into the wheel.

        The level tests compare aligned pages rather than deltas: a
        timer belongs to the finest level whose window contains both
        its tick and the cursor.  Ticks at or behind the cursor (their
        bucket is already drained) merge straight into the sorted due
        list, which keeps dispatch order exact even when a bounded run
        left the cursor ahead of the clock.
        """
        cur = self._cur
        if when < cur + 1.0:  # tick <= cur: bucket already drained
            insort(self._due, (when, seq, event), self._due_i)
            self._departed += 1
            return
        tick = int(when)
        x = tick ^ cur
        if x < 256:
            slot = tick & 255
            self._l0[slot].append((when, seq, event))
            self._bm0 |= _BIT[slot]
        elif x < 65536:
            l1 = self._l1
            if l1 is None:
                l1 = self._l1 = [[] for _ in range(_WHEEL_SLOTS)]
            slot = (tick >> 8) & 255
            l1[slot].append((when, seq, event))
            self._bm1 |= _BIT[slot]
        elif x < 16777216:
            l2 = self._l2
            if l2 is None:
                l2 = self._l2 = [[] for _ in range(_WHEEL_SLOTS)]
            slot = (tick >> 16) & 255
            l2[slot].append((when, seq, event))
            self._bm2 |= _BIT[slot]
        elif x < 4294967296:
            l3 = self._l3
            if l3 is None:
                l3 = self._l3 = [[] for _ in range(_WHEEL_SLOTS)]
            slot = (tick >> 24) & 255
            l3[slot].append((when, seq, event))
            self._bm3 |= _BIT[slot]
        else:
            self._overflow.append((when, seq, event))

    def _refill(self) -> bool:
        """Drain the next occupied bucket (sorted) into the due list.

        Cascades coarser-level buckets down as the cursor crosses their
        windows; pulls the overflow list back into the wheel when every
        level is empty.  Returns False when no timers remain anywhere.
        Must only be called once the current due batch is consumed.
        """
        while True:
            bm = self._bm0
            if bm:
                lsb = bm & -bm
                bm ^= lsb
                slot = lsb.bit_length() - 1
                l0 = self._l0
                bucket = l0[slot]
                # Recycle the exhausted batch as the slot's fresh
                # bucket: steady-state draining allocates no lists.
                stale = self._due
                del stale[:]
                l0[slot] = stale
                if len(bucket) > 1:
                    bucket.sort()
                # Thin-bucket amortisation: a page of near-empty slots
                # (sparse timers) would otherwise pay the whole drain
                # dance per event, so keep pulling consecutive slots of
                # the same page until the batch is worth dispatching.
                # Slot order is tick order within a page, so the
                # concatenation of per-slot sorted runs stays sorted
                # and dispatch order is untouched.
                while bm and len(bucket) < 64:
                    lsb = bm & -bm
                    bm ^= lsb
                    slot = lsb.bit_length() - 1
                    more = l0[slot]
                    if len(more) > 1:
                        more.sort()
                    bucket += more
                    del more[:]  # the emptied list stays as the bucket
                self._bm0 = bm
                self._cur = (self._cur & -256) | slot  # -256 == ~_WHEEL_MASK
                departed = self._departed
                count = self._seq - self._stat_norm_fifo - departed
                # Occupancy high-water, sampled at drain granularity
                # (the due batch is empty here, so this is the full
                # resident population).
                if count > self._stat_wheel_max:
                    self._stat_wheel_max = count
                self._departed = departed + len(bucket)
                self._due = bucket
                self._due_i = 0
                self._gen += 1
                self._stat_drains += 1
                return True
            bm = self._bm1
            if bm:
                lsb = bm & -bm
                self._bm1 = bm ^ lsb
                slot = lsb.bit_length() - 1
                l1 = self._l1
                bucket = l1[slot]
                l1[slot] = []
                self._cur = (self._cur & -65536) | (slot << 8)
                l0 = self._l0
                bm0 = self._bm0
                for entry in bucket:
                    s = int(entry[0]) & 255
                    l0[s].append(entry)
                    bm0 |= _BIT[s]
                self._bm0 = bm0
                self._stat_cascades += len(bucket)
                continue
            bm = self._bm2
            if bm:
                lsb = bm & -bm
                self._bm2 = bm ^ lsb
                slot = lsb.bit_length() - 1
                l2 = self._l2
                bucket = l2[slot]
                l2[slot] = []
                self._cur = (self._cur & -16777216) | (slot << 16)
                l1 = self._l1
                if l1 is None:
                    l1 = self._l1 = [[] for _ in range(_WHEEL_SLOTS)]
                bm1 = self._bm1
                for entry in bucket:
                    s = (int(entry[0]) >> 8) & 255
                    l1[s].append(entry)
                    bm1 |= _BIT[s]
                self._bm1 = bm1
                self._stat_cascades += len(bucket)
                continue
            bm = self._bm3
            if bm:
                lsb = bm & -bm
                self._bm3 = bm ^ lsb
                slot = lsb.bit_length() - 1
                l3 = self._l3
                bucket = l3[slot]
                l3[slot] = []
                self._cur = (self._cur & -4294967296) | (slot << 24)
                l2 = self._l2
                if l2 is None:
                    l2 = self._l2 = [[] for _ in range(_WHEEL_SLOTS)]
                bm2 = self._bm2
                for entry in bucket:
                    s = (int(entry[0]) >> 16) & 255
                    l2[s].append(entry)
                    bm2 |= _BIT[s]
                self._bm2 = bm2
                self._stat_cascades += len(bucket)
                continue
            overflow = self._overflow
            if overflow:
                # Jump the cursor to the earliest overflow timer and
                # re-file the batch; entries still beyond the top
                # level's horizon land back in (a new) overflow.  The
                # jump must reach ``tick`` itself, not ``tick - 1``:
                # when the earliest tick sits exactly on a 2^32-page
                # boundary, ``tick - 1`` is in the previous page, the
                # XOR level test never passes, and the entry would
                # bounce through overflow forever.
                tick = int(min(overflow)[0])
                if tick > self._cur:
                    self._cur = tick
                self._overflow = []
                # Re-filed entries stay resident (no _departed change);
                # any that merge into _due are departed by the insort
                # branch of _insert_future itself.
                insert = self._insert_future
                for entry in overflow:
                    insert(entry[0], entry[1], entry[2])
                self._stat_cascades += len(overflow)
                # Entries at the cursor tick merged straight into the
                # due list; that already *is* the next batch (a lone
                # boundary timer fills no bucket, so falling through
                # would report an empty wheel and drop it).
                if self._due_i < len(self._due):
                    return True
                continue
            return False

    def _compact(self) -> None:
        """Sweep tombstones (cancelled timeouts) out of the wheel.

        The equivalent of the old heap rebuild: every occupied bucket,
        the overflow list and the unconsumed due tail are filtered in
        one pass.  In place where it matters: ``run`` reloads its due
        cursor after every callback, so a cancellation inside an event
        callback may sweep mid-run.
        """
        removed = 0
        for bm_name, level in (("_bm0", self._l0), ("_bm1", self._l1),
                               ("_bm2", self._l2), ("_bm3", self._l3)):
            bm = getattr(self, bm_name)
            if not bm or level is None:
                continue
            new_bm = 0
            while bm:
                lsb = bm & -bm
                bm ^= lsb
                slot = lsb.bit_length() - 1
                bucket = level[slot]
                live = [e for e in bucket if e[2].callbacks is not None]
                removed += len(bucket) - len(live)
                level[slot] = live
                if live:
                    new_bm |= lsb
            setattr(self, bm_name, new_bm)
        overflow = self._overflow
        if overflow:
            live = [e for e in overflow if e[2].callbacks is not None]
            removed += len(overflow) - len(live)
            self._overflow = live
        self._departed += removed
        due = self._due
        di = self._due_i
        if di < len(due):
            due[:] = [e for e in due[di:] if e[2].callbacks is not None]
        else:
            del due[:]
        self._due_i = 0
        self._gen += 1
        self._n_cancelled = sum(
            1 for _, event in self._normal if event.callbacks is None
        )
        self._stat_sweeps += 1

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` ns.

        Equivalent to ``Timeout(sim, delay, value)`` but with the
        constructor *and* the level-0 wheel insert inlined —
        ``sim.timeout`` is how nearly every timer in the tree is
        created, and skipping the call frames is measurable.  Keep in
        sync with :meth:`Timeout.__init__` / :meth:`_insert_future`.
        """
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        event = Timeout.__new__(Timeout)
        event.sim = self
        event.callbacks = []
        event._value = value
        event._ok = None
        event.delay = delay
        now = self.now
        when = now + delay
        seq = self._seq
        self._seq = seq + 1
        if when == now:
            self._stat_norm_fifo += 1
            self._normal.append((seq, event))
            return event
        # The whole level ladder is inlined (not just level 0): guard
        # timers routinely land two levels up, and a function call per
        # arm/cancel cycle is measurable in cancel-heavy workloads.
        # The behind-cursor test is a pure float compare (tick <= cur
        # iff when < cur + 1), so the merge-insert path never pays the
        # int conversion; once it fails, tick > cur is implied and
        # level selection is the xor distance alone: tick ^ cur <
        # 256**k iff tick and cur share the level-k aligned page.
        cur = self._cur
        if when < cur + 1.0:
            insort(self._due, (when, seq, event), self._due_i)
            self._departed += 1
            return event
        tick = int(when)
        x = tick ^ cur
        if x < 256:
            slot = tick & 255
            self._l0[slot].append((when, seq, event))
            self._bm0 |= _BIT[slot]
        elif x < 65536:
            l1 = self._l1
            if l1 is None:
                l1 = self._l1 = [[] for _ in range(_WHEEL_SLOTS)]
            slot = (tick >> 8) & 255
            l1[slot].append((when, seq, event))
            self._bm1 |= _BIT[slot]
        elif x < 16777216:
            l2 = self._l2
            if l2 is None:
                l2 = self._l2 = [[] for _ in range(_WHEEL_SLOTS)]
            slot = (tick >> 16) & 255
            l2[slot].append((when, seq, event))
            self._bm2 |= _BIT[slot]
        elif x < 4294967296:
            l3 = self._l3
            if l3 is None:
                l3 = self._l3 = [[] for _ in range(_WHEEL_SLOTS)]
            slot = (tick >> 24) & 255
            l3[slot].append((when, seq, event))
            self._bm3 |= _BIT[slot]
        else:
            self._overflow.append((when, seq, event))
        return event

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new simulation process from ``generator``."""
        return Process(self, generator, name=name)

    def periodic(self, interval_ns: float, fn: Callable[[], Any],
                 until_ns: float, name: str = "periodic") -> Process:
        """Call ``fn()`` every ``interval_ns`` of simulated time.

        The ticker is bounded by ``until_ns``: ticks fire at every
        multiple of ``interval_ns`` up to *and including* ``until_ns``
        (``run(until=h)`` dispatches events landing exactly on ``h``),
        and the process then terminates so run-to-exhaustion callers
        are never kept alive by a stale ticker.  A horizon that is an
        exact multiple of the interval therefore gets its final tick at
        exactly ``until_ns`` — controller decision epochs and sampler
        windows aligned to the run horizon must not lose their last
        tick.  ``fn`` runs at event-boundary granularity and must not
        itself advance simulated time — this is the host-side sampling
        hook used by the invariant sampler (:mod:`repro.check`) and the
        time-series sampler (:mod:`repro.obs.timeseries`).
        """
        if interval_ns <= 0:
            raise ValueError(f"non-positive periodic interval: {interval_ns}")

        def ticker():
            while self.now + interval_ns <= until_ns:
                yield self.timeout(interval_ns)
                fn()

        return self.process(ticker(), name=name)

    # -- execution ----------------------------------------------------

    def _pop(self, limit: float = float("inf")) -> Optional[Event]:
        """Pop the next live event in (time, priority, seq) order.

        Advances the clock when the winner comes off the wheel; due
        timers later than ``limit`` are left queued.  Skips cancelled
        timeouts.  Returns None when nothing live is due.
        """
        urgent = self._urgent
        if urgent:
            # URGENT events are only ever scheduled at the current
            # instant (succeed/fail stamp ``sim.now``; timeouts are
            # NORMAL), so the urgent FIFO always outranks the wheel and
            # never holds cancelled timers.
            return urgent.popleft()
        normal = self._normal
        now = self.now
        while normal:
            due = self._due
            di = self._due_i
            if di < len(due) and due[di][0] == now and due[di][1] < normal[0][0]:
                # Same-instant due timer scheduled before the FIFO head.
                event = due[di][2]
                self._due_i = di + 1
                self._gen += 1
            else:
                event = normal.popleft()[1]
            if event.callbacks is not None:
                return event
            self._n_cancelled -= 1
        while True:
            due = self._due
            di = self._due_i
            if di >= len(due):
                if not self._refill():
                    return None
                continue
            entry = due[di]
            event = entry[2]
            if event.callbacks is None:  # cancelled timer: purge
                self._due_i = di + 1
                self._gen += 1
                self._n_cancelled -= 1
                continue
            when = entry[0]
            if when > limit:
                return None
            if when < now:
                raise SimulationError("event scheduled in the past")
            self._due_i = di + 1
            self._gen += 1
            self.now = when
            return event

    def peek(self) -> float:
        """Time of the next live scheduled event, or ``inf`` if none."""
        for event in self._urgent:
            if event.callbacks is not None:
                return self.now
        for _seq, event in self._normal:
            if event.callbacks is not None:
                return self.now
        while True:
            due = self._due
            di0 = di = self._due_i
            n = len(due)
            while di < n:
                entry = due[di]
                if entry[2].callbacks is None:
                    di += 1
                    self._n_cancelled -= 1
                    continue
                if di != di0:
                    self._due_i = di
                    self._gen += 1
                return entry[0]
            if di != di0:
                self._due_i = di
                self._gen += 1
            if not self._refill():
                return float("inf")

    def _dispatch(self, event: Event) -> None:
        """Run one event's callbacks (the inner loop of the engine)."""
        if event._ok is None:
            # A Timeout (or process-start) triggers at dispatch time.
            event._ok = True
        self._stat_dispatched += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # An unhandled failure with nobody waiting would silently
            # disappear; surface it instead.
            raise event._exception

    def step(self) -> None:
        """Process exactly one event (skipping cancelled timeouts)."""
        event = self._pop()
        if event is not None:
            self._dispatch(event)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to exhaustion), a timestamp, or
        an :class:`Event` (run until the event fires; returns its
        value).
        """
        stop_event: Optional[Event] = None
        horizon = float("inf")
        bounded = False
        if isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._exception
        elif until is not None:
            horizon = float(until)
            if horizon < self.now:
                raise ValueError(f"until={horizon} is in the past (now={self.now})")
            bounded = True
        # The event loop is _pop + _dispatch inlined into one frame:
        # this function IS the hot loop of every experiment, and the
        # two calls per event it saves are measurable.  The due cursor
        # lives on the instance and is re-checked after every callback,
        # so callbacks are free to merge-insert timers, sweep the
        # wheel, or peek() without invalidating loop state.  Runs of
        # same-instant due timers are dispatched in a tight inner loop
        # that skips the full pop machinery between events; the batch
        # bails back to the outer loop the moment a callback schedules
        # a same-instant event, perturbs the due cursor, or the run
        # hits a tombstone.
        urgent = self._urgent
        normal = self._normal
        dispatched = 0
        try:
            while True:
                # -- pop the next live event in (time, priority, seq) order
                if urgent:
                    # Urgent events are always at the current instant and
                    # never cancellable (see _pop).
                    event = urgent.popleft()
                elif normal:
                    due = self._due
                    di = self._due_i
                    if di < len(due) and due[di][0] == self.now \
                            and due[di][1] < normal[0][0]:
                        # Same-instant due timer scheduled before the FIFO
                        # head (a timer whose due time has just arrived).
                        event = due[di][2]
                        self._due_i = di + 1
                    else:
                        event = normal.popleft()[1]
                    if event.callbacks is None:  # cancelled zero-delay timer
                        self._n_cancelled -= 1
                        continue
                else:
                    due = self._due
                    di = self._due_i
                    if di >= len(due):
                        # Inline single-bucket drain (the hot refill
                        # path; cascades and overflow go through
                        # _refill).  The exhausted batch list is
                        # recycled as the drained slot's fresh bucket,
                        # so steady-state draining allocates nothing.
                        bm = self._bm0
                        if bm:
                            lsb = bm & -bm
                            bm ^= lsb
                            slot = lsb.bit_length() - 1
                            l0 = self._l0
                            bucket = l0[slot]
                            del due[:]
                            l0[slot] = due
                            if len(bucket) > 1:
                                bucket.sort()
                            # Thin-bucket amortisation (see _refill):
                            # sparse pages drain several slots per
                            # batch instead of paying the full drain
                            # per event.
                            while bm and len(bucket) < 64:
                                lsb = bm & -bm
                                bm ^= lsb
                                slot = lsb.bit_length() - 1
                                more = l0[slot]
                                if len(more) > 1:
                                    more.sort()
                                bucket += more
                                del more[:]
                            self._bm0 = bm
                            # -256 == ~_WHEEL_MASK (constant-folded)
                            self._cur = (self._cur & -256) | slot
                            departed = self._departed
                            count = (self._seq - self._stat_norm_fifo
                                     - departed)
                            if count > self._stat_wheel_max:
                                self._stat_wheel_max = count
                            self._departed = departed + len(bucket)
                            due = self._due = bucket
                            self._due_i = 0
                            self._stat_drains += 1
                        elif not self._refill():
                            if stop_event is not None:
                                raise SimulationError(
                                    "event queue empty before the awaited "
                                    "event fired"
                                )
                            if bounded:
                                self.now = horizon
                            return None
                        else:
                            due = self._due
                        di = 0
                    entry = due[di]
                    event = entry[2]
                    if event.callbacks is None:  # cancelled timer: purge
                        self._due_i = di + 1
                        self._n_cancelled -= 1
                        continue
                    when = entry[0]
                    if when > horizon:
                        # Leave the batch tail queued; horizon is finite
                        # only for bounded runs.
                        self.now = horizon
                        return None
                    # No scheduled-in-the-past check here: due entries
                    # are never earlier than the instant that drained
                    # them and the clock never runs backwards.  _pop
                    # keeps the check for the step()/peek() path.
                    ndi = di + 1
                    self._due_i = ndi
                    self.now = when
                    # Batch state: gen detects any out-of-band due-batch
                    # perturbation (merge-insert, sweep, peek purge,
                    # refill); while it holds, len(due) cannot change,
                    # so the bound is hoisted too.
                    gen = self._gen
                    n = len(due)
                    # -- batch dispatch of the due run
                    while True:
                        if event._ok is None:
                            event._ok = True
                        dispatched += 1
                        callbacks = event.callbacks
                        event.callbacks = None
                        if len(callbacks) == 1:
                            # Nearly every event has exactly one waiter.
                            callbacks[0](event)
                        else:
                            for callback in callbacks:
                                callback(event)
                        if not event._ok and not event._defused:
                            raise event._exception
                        if stop_event is not None \
                                and stop_event.callbacks is None:
                            if stop_event._ok:
                                return stop_event._value
                            raise stop_event._exception
                        # Continue the batch only while nothing outranks
                        # the next due entry: no urgent/normal arrivals
                        # (new same-instant events always carry larger
                        # seqs, but urgent ones outrank the wheel) and
                        # the due batch untouched by callbacks (one
                        # generation compare covers merge-inserts,
                        # sweeps, purges and refills).  The clock
                        # advances inside the batch — due entries are
                        # sorted, so any prefix of live entries under
                        # the horizon dispatches without the full pop
                        # logic above.
                        if urgent or normal or self._gen != gen \
                                or ndi >= n:
                            break
                        entry = due[ndi]
                        when = entry[0]
                        if when > horizon:
                            break
                        event = entry[2]
                        if event.callbacks is None:
                            break  # outer loop purges tombstones
                        ndi += 1
                        self._due_i = ndi
                        self.now = when
                    continue
                # -- dispatch (mirrors _dispatch) for FIFO events
                if event._ok is None:
                    event._ok = True
                dispatched += 1
                callbacks = event.callbacks
                event.callbacks = None
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    raise event._exception
                if stop_event is not None and stop_event.callbacks is None:
                    if stop_event._ok:
                        return stop_event._value
                    raise stop_event._exception
        finally:
            self._stat_dispatched += dispatched
