"""Structured event tracing.

Components emit trace records (``tracer.emit(category, label, **fields)``)
that experiments later query to attribute latency to pipeline stages —
this is how the per-step breakdown of the paper's Section 2 receive path
is measured rather than asserted.

Tracing sits on simulation hot paths, so the disabled state must cost
as close to nothing as possible: a disabled tracer rebinds ``emit`` to
a module-level no-op (no record, no dict, no attribute test) and is
*falsy*, so call sites holding an optional tracer can guard with a bare
``if tracer:`` and skip building span objects or keyword arguments
entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from .engine import Simulator

__all__ = ["TraceRecord", "Tracer", "SpanTimer"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """A single trace point."""

    time_ns: float
    category: str
    label: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


def _emit_disabled(category: str, label: str, **fields: Any) -> None:
    """The disabled-tracer fast path: drop everything, allocate nothing."""


class Tracer:
    """Collects :class:`TraceRecord` objects during a simulation run."""

    def __init__(self, sim: Simulator, enabled: bool = True):
        self.sim = sim
        self.records: list[TraceRecord] = []
        self._subscribers: list[Callable[[TraceRecord], None]] = []
        self.enabled = enabled

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        # Swap the bound ``emit`` so the disabled path pays no per-call
        # flag test and builds no TraceRecord.
        self._enabled = bool(value)
        if self._enabled:
            self.__dict__.pop("emit", None)
        else:
            self.emit = _emit_disabled

    def __bool__(self) -> bool:
        """A disabled tracer is falsy: ``if tracer:`` guards both the
        None case and the disabled case at call sites."""
        return self._enabled

    def emit(self, category: str, label: str, **fields: Any) -> None:
        record = TraceRecord(self.sim.now, category, label, fields)
        self.records.append(record)
        for fn in self._subscribers:
            fn(record)

    def subscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        """Call ``fn`` synchronously on every future record."""
        self._subscribers.append(fn)

    def query(
        self,
        category: Optional[str] = None,
        label: Optional[str] = None,
        **field_filters: Any,
    ) -> Iterator[TraceRecord]:
        """Iterate records matching the given category/label/fields."""
        for record in self.records:
            if category is not None and record.category != category:
                continue
            if label is not None and record.label != label:
                continue
            if any(record.fields.get(k) != v for k, v in field_filters.items()):
                continue
            yield record

    def clear(self) -> None:
        self.records.clear()

    def span(self, category: str, label: str, **fields: Any) -> "SpanTimer":
        return SpanTimer(self, category, label, fields)


class SpanTimer:
    """Measures a begin/end interval and emits one record at close."""

    __slots__ = ("tracer", "category", "label", "fields", "start_ns")

    def __init__(self, tracer: Tracer, category: str, label: str, fields: dict):
        self.tracer = tracer
        self.category = category
        self.label = label
        self.fields = fields
        self.start_ns = tracer.sim.now

    def close(self, **extra: Any) -> float:
        """Emit the span record; returns the duration in ns."""
        duration = self.tracer.sim.now - self.start_ns
        self.tracer.emit(
            self.category,
            self.label,
            start_ns=self.start_ns,
            duration_ns=duration,
            **self.fields,
            **extra,
        )
        return duration
