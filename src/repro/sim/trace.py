"""Structured event tracing.

Components emit trace records (``tracer.emit(category, label, **fields)``)
that experiments later query to attribute latency to pipeline stages —
this is how the per-step breakdown of the paper's Section 2 receive path
is measured rather than asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from .engine import Simulator

__all__ = ["TraceRecord", "Tracer", "SpanTimer"]


@dataclass(frozen=True)
class TraceRecord:
    """A single trace point."""

    time_ns: float
    category: str
    label: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


class Tracer:
    """Collects :class:`TraceRecord` objects during a simulation run."""

    def __init__(self, sim: Simulator, enabled: bool = True):
        self.sim = sim
        self.enabled = enabled
        self.records: list[TraceRecord] = []
        self._subscribers: list[Callable[[TraceRecord], None]] = []

    def emit(self, category: str, label: str, **fields: Any) -> None:
        if not self.enabled:
            return
        record = TraceRecord(self.sim.now, category, label, fields)
        self.records.append(record)
        for fn in self._subscribers:
            fn(record)

    def subscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        """Call ``fn`` synchronously on every future record."""
        self._subscribers.append(fn)

    def query(
        self,
        category: Optional[str] = None,
        label: Optional[str] = None,
        **field_filters: Any,
    ) -> Iterator[TraceRecord]:
        """Iterate records matching the given category/label/fields."""
        for record in self.records:
            if category is not None and record.category != category:
                continue
            if label is not None and record.label != label:
                continue
            if any(record.fields.get(k) != v for k, v in field_filters.items()):
                continue
            yield record

    def clear(self) -> None:
        self.records.clear()

    def span(self, category: str, label: str, **fields: Any) -> "SpanTimer":
        return SpanTimer(self, category, label, fields)


class SpanTimer:
    """Measures a begin/end interval and emits one record at close."""

    def __init__(self, tracer: Tracer, category: str, label: str, fields: dict):
        self.tracer = tracer
        self.category = category
        self.label = label
        self.fields = fields
        self.start_ns = tracer.sim.now

    def close(self, **extra: Any) -> float:
        """Emit the span record; returns the duration in ns."""
        duration = self.tracer.sim.now - self.start_ns
        self.tracer.emit(
            self.category,
            self.label,
            start_ns=self.start_ns,
            duration_ns=duration,
            **self.fields,
            **extra,
        )
        return duration
