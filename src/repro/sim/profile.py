"""Engine profiling hooks: event counts and wheel occupancy marks.

The :class:`~repro.sim.engine.Simulator` maintains a handful of cheap
counters on its hot path (dispatched events, timer-wheel pushes, wheel
occupancy high-water, same-instant fast-path hits, timer cancellations,
bucket drains and level cascades).  This module turns them into a
readable report so benchmarks and experiments can see *where* engine
time goes and how the timer wheel actually behaves::

    from repro.sim.profile import attach_profile

    sim = Simulator()
    profile = attach_profile(sim)
    ...run the simulation...
    print(profile.format())         # human-readable table
    data = profile.report()         # JSON-ready dict

``attach_profile`` is a live view — attach it at any point; counters
reflect the simulator's whole lifetime.  ``snapshot()`` freezes a copy
for before/after comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

from .engine import Simulator

__all__ = ["EngineProfile", "ProfileSnapshot", "attach_profile"]


@dataclass(frozen=True)
class ProfileSnapshot:
    """A frozen copy of the engine counters at one moment."""

    events_dispatched: int
    wheel_pushes: int
    wheel_high_water: int
    fast_path_events: int
    timeouts_cancelled: int
    wheel_sweeps: int
    bucket_drains: int
    cascaded_entries: int
    pending_tombstones: int
    wheel_size: int


class EngineProfile:
    """Live view over a :class:`Simulator`'s hot-path counters."""

    def __init__(self, sim: Simulator):
        self.sim = sim

    def snapshot(self) -> ProfileSnapshot:
        sim = self.sim
        # Sequence numbers are consumed only by wheel pushes and NORMAL
        # same-instant appends, so wheel pushes are derived rather than
        # counted on the push path.
        return ProfileSnapshot(
            events_dispatched=sim._stat_dispatched,
            wheel_pushes=sim._seq - sim._stat_norm_fifo,
            wheel_high_water=sim._stat_wheel_max,
            fast_path_events=sim._stat_urgent_fifo + sim._stat_norm_fifo,
            timeouts_cancelled=sim._stat_cancels,
            wheel_sweeps=sim._stat_sweeps,
            bucket_drains=sim._stat_drains,
            cascaded_entries=sim._stat_cascades,
            pending_tombstones=sim._n_cancelled,
            wheel_size=sim.pending_timers,
        )

    def report(self) -> dict[str, int | float]:
        """JSON-ready counter dict, plus the fast-path hit ratio."""
        snap = self.snapshot()
        scheduled = snap.wheel_pushes + snap.fast_path_events
        data: dict[str, int | float] = {
            "events_dispatched": snap.events_dispatched,
            "wheel_pushes": snap.wheel_pushes,
            "wheel_high_water": snap.wheel_high_water,
            "fast_path_events": snap.fast_path_events,
            "fast_path_ratio": (
                round(snap.fast_path_events / scheduled, 4) if scheduled else 0.0
            ),
            "timeouts_cancelled": snap.timeouts_cancelled,
            "wheel_sweeps": snap.wheel_sweeps,
            "bucket_drains": snap.bucket_drains,
            "cascaded_entries": snap.cascaded_entries,
            "pending_tombstones": snap.pending_tombstones,
            "wheel_size": snap.wheel_size,
        }
        return data

    def format(self) -> str:
        """Human-readable multi-line report."""
        lines = [f"engine profile @ t={self.sim.now:.0f} ns"]
        for key, value in self.report().items():
            lines.append(f"  {key:<20} {value}")
        return "\n".join(lines)


def attach_profile(sim: Simulator) -> EngineProfile:
    """Return a live profiling view of ``sim``'s engine counters."""
    return EngineProfile(sim)
