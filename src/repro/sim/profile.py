"""Engine profiling hooks: event counts and queue high-water marks.

The :class:`~repro.sim.engine.Simulator` maintains a handful of cheap
counters on its hot path (dispatched events, heap pushes, heap
high-water mark, same-instant fast-path hits, timer cancellations).
This module turns them into a readable report so benchmarks and
experiments can see *where* engine time goes and how deep the timer
heap actually gets::

    from repro.sim.profile import attach_profile

    sim = Simulator()
    profile = attach_profile(sim)
    ...run the simulation...
    print(profile.format())         # human-readable table
    data = profile.report()         # JSON-ready dict

``attach_profile`` is a live view — attach it at any point; counters
reflect the simulator's whole lifetime.  ``snapshot()`` freezes a copy
for before/after comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

from .engine import Simulator

__all__ = ["EngineProfile", "ProfileSnapshot", "attach_profile"]


@dataclass(frozen=True)
class ProfileSnapshot:
    """A frozen copy of the engine counters at one moment."""

    events_dispatched: int
    heap_pushes: int
    heap_high_water: int
    fast_path_events: int
    timeouts_cancelled: int
    heap_compactions: int
    pending_tombstones: int
    heap_size: int


class EngineProfile:
    """Live view over a :class:`Simulator`'s hot-path counters."""

    def __init__(self, sim: Simulator):
        self.sim = sim

    def snapshot(self) -> ProfileSnapshot:
        sim = self.sim
        # Sequence numbers are consumed only by heap pushes and NORMAL
        # same-instant appends, so heap pushes are derived rather than
        # counted on the push path.
        return ProfileSnapshot(
            events_dispatched=sim._stat_dispatched,
            heap_pushes=sim._seq - sim._stat_norm_fifo,
            heap_high_water=sim._stat_heap_max,
            fast_path_events=sim._stat_urgent_fifo + sim._stat_norm_fifo,
            timeouts_cancelled=sim._stat_cancels,
            heap_compactions=sim._stat_compactions,
            pending_tombstones=sim._n_cancelled,
            heap_size=len(sim._heap),
        )

    def report(self) -> dict[str, int | float]:
        """JSON-ready counter dict, plus the fast-path hit ratio."""
        snap = self.snapshot()
        scheduled = snap.heap_pushes + snap.fast_path_events
        data: dict[str, int | float] = {
            "events_dispatched": snap.events_dispatched,
            "heap_pushes": snap.heap_pushes,
            "heap_high_water": snap.heap_high_water,
            "fast_path_events": snap.fast_path_events,
            "fast_path_ratio": (
                round(snap.fast_path_events / scheduled, 4) if scheduled else 0.0
            ),
            "timeouts_cancelled": snap.timeouts_cancelled,
            "heap_compactions": snap.heap_compactions,
            "pending_tombstones": snap.pending_tombstones,
            "heap_size": snap.heap_size,
        }
        return data

    def format(self) -> str:
        """Human-readable multi-line report."""
        lines = [f"engine profile @ t={self.sim.now:.0f} ns"]
        for key, value in self.report().items():
            lines.append(f"  {key:<20} {value}")
        return "\n".join(lines)


def attach_profile(sim: Simulator) -> EngineProfile:
    """Return a live profiling view of ``sim``'s engine counters."""
    return EngineProfile(sim)
