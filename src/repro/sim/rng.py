"""Deterministic, named random-number streams.

Experiments must be reproducible run-to-run and component-to-component:
adding a new consumer of randomness must not perturb the draws seen by
existing consumers.  :class:`RngRegistry` therefore derives an
independent :class:`random.Random` stream per *name*, seeded from the
registry seed and the name itself.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RngRegistry"]


class RngRegistry:
    """A factory of independent, deterministically seeded RNG streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, salt: str) -> "RngRegistry":
        """Derive a child registry whose streams are all independent of
        this registry's streams (used for per-trial reseeding)."""
        digest = hashlib.sha256(f"{self.seed}:fork:{salt}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
