"""Deterministic, named random-number streams.

Experiments must be reproducible run-to-run and component-to-component:
adding a new consumer of randomness must not perturb the draws seen by
existing consumers.  :class:`RngRegistry` therefore derives an
independent :class:`random.Random` stream per *name*, seeded from the
registry seed and the name itself.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(seed: int, *path: str) -> int:
    """Derive a child seed from ``seed`` and a hierarchical ``path``.

    The derivation is a pure function of its inputs (SHA-256 over the
    seed and the path components), so a job scheduled on any worker, in
    any order, with any level of parallelism sees the same seed.  The
    experiment runner uses ``derive_seed(root, experiment_id, job_id)``
    to give every point job an independent stream; ``RngRegistry.fork``
    uses the same construction for per-trial reseeding.
    """
    material = ":".join([str(int(seed)), *path])
    digest = hashlib.sha256(material.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A factory of independent, deterministically seeded RNG streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, salt: str) -> "RngRegistry":
        """Derive a child registry whose streams are all independent of
        this registry's streams (used for per-trial reseeding)."""
        return RngRegistry(derive_seed(self.seed, "fork", salt))
