"""Time units and cycle/time conversion helpers.

The simulator's clock runs in nanoseconds.  Hardware models express
costs in CPU cycles or bytes-per-second; the helpers here convert both
ways so that unit mistakes show up as type-shaped errors rather than
silently wrong magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "NS",
    "US",
    "MS",
    "SEC",
    "Frequency",
    "GHZ",
    "bytes_time_ns",
]

# All simulation timestamps are nanoseconds; these scale other units in.
NS = 1.0
US = 1_000.0
MS = 1_000_000.0
SEC = 1_000_000_000.0


@dataclass(frozen=True)
class Frequency:
    """A clock frequency with cycle<->nanosecond conversions."""

    hz: float

    def __post_init__(self):
        if self.hz <= 0:
            raise ValueError(f"frequency must be positive, got {self.hz}")

    @property
    def ghz(self) -> float:
        return self.hz / 1e9

    def cycles_to_ns(self, cycles: float) -> float:
        """Duration of ``cycles`` clock cycles, in nanoseconds."""
        return cycles * 1e9 / self.hz

    def ns_to_cycles(self, ns: float) -> float:
        """Number of cycles elapsing in ``ns`` nanoseconds."""
        return ns * self.hz / 1e9


def GHZ(value: float) -> Frequency:
    """Build a :class:`Frequency` from a GHz figure."""
    return Frequency(value * 1e9)


def bytes_time_ns(nbytes: int, bytes_per_sec: float) -> float:
    """Serialisation delay of ``nbytes`` at ``bytes_per_sec``, in ns."""
    if bytes_per_sec <= 0:
        raise ValueError(f"bandwidth must be positive, got {bytes_per_sec}")
    return nbytes / bytes_per_sec * SEC
