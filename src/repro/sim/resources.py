"""Waitable resources built on the event engine.

* :class:`Store` — an unbounded or bounded FIFO of items; ``get``
  blocks until an item is available, ``put`` blocks while full.
* :class:`PriorityStore` — like Store but delivers lowest-priority-key
  items first (used for interrupt queues).
* :class:`Resource` — a counted semaphore (used for DMA engines and
  shared buses).
* :class:`Gate` — a broadcast condition: many waiters, released
  together (used for "kernel run-queue became non-empty" style
  signals).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Optional

from .engine import Event, SimulationError, Simulator

__all__ = ["Store", "PriorityStore", "Resource", "Gate"]


class Store:
    """A FIFO channel of items between simulation processes."""

    __slots__ = ("sim", "capacity", "name", "items", "_getters", "_putters")

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = ""):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Deposit ``item``; the returned event fires once accepted."""
        event = Event(self.sim)
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif not self.is_full:
            self.items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False (drop) when full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.is_full:
            return False
        self.items.append(item)
        return True

    def get(self) -> Event:
        """The returned event fires with the next item."""
        event = Event(self.sim)
        if self.items:
            event.succeed(self.items.popleft())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns ``(ok, item)``."""
        if not self.items:
            return False, None
        item = self.items.popleft()
        self._admit_putter()
        return True, item

    def _admit_putter(self) -> None:
        if self._putters and not self.is_full:
            event, item = self._putters.popleft()
            self.items.append(item)
            event.succeed()


class PriorityStore(Store):
    """A Store delivering items in (priority, fifo) order.

    Items are pushed as ``put(item, priority=k)``; lower ``k`` first.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = ""):
        super().__init__(sim, capacity, name)
        self._heap: list[tuple[Any, int, Any]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._heap) >= self.capacity

    def put(self, item: Any, priority: int = 0) -> Event:
        event = Event(self.sim)
        if self._getters:
            self._getters.popleft().succeed(item)
            event.succeed()
        elif not self.is_full:
            heapq.heappush(self._heap, (priority, next(self._seq), item))
            event.succeed()
        else:
            raise SimulationError("PriorityStore does not support blocking puts")
        return event

    def get(self) -> Event:
        event = Event(self.sim)
        if self._heap:
            _prio, _seq, item = heapq.heappop(self._heap)
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> tuple[bool, Any]:
        if not self._heap:
            return False, None
        _prio, _seq, item = heapq.heappop(self._heap)
        return True, item


class Resource:
    """A counted semaphore with FIFO admission."""

    __slots__ = ("sim", "capacity", "name", "in_use", "_waiters")

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def acquire(self) -> Event:
        event = Event(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot directly to the next waiter; in_use stays.
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1


class Gate:
    """A broadcast condition variable.

    ``wait()`` returns an event; ``open(value)`` fires all currently
    outstanding waits.  Unlike Store, a single ``open`` releases every
    waiter at once.
    """

    __slots__ = ("sim", "name", "_waiters")

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._waiters: list[Event] = []

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def wait(self) -> Event:
        event = Event(self.sim)
        self._waiters.append(event)
        return event

    def open(self, value: Any = None) -> int:
        """Release all waiters; returns how many were released."""
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed(value)
        return len(waiters)
