"""Request-scoped spans with parent links (a Dapper-style tree).

The existing :class:`repro.sim.trace.Tracer` collects flat records; it
cannot stitch one request's journey across the client, the wire, the
NIC, and the OS.  A :class:`SpanRecorder` adds exactly that: the client
opens a *root* span per request and injects its context — a
``(trace_id, span_id)`` pair — into ``Frame.meta`` under the ``"obs"``
key; the frame's metadata already flows through every stack (the NIC
copies it into descriptors/decoded requests, the kernel into datagrams,
workers into responses), so each layer can attach child spans without
any new plumbing of its own.

Two kinds of span creation:

* ``start()``/``finish()`` for intervals bracketed in one component
  (the root RPC span, the Lauberhorn dispatch/service windows);
* ``record()`` for intervals *synthesized* after the fact from
  timestamps that already exist (wire time from ``Frame.born_ns``,
  queue waits from stamps components leave in ``meta``).

Recording never touches the simulator: spans are pure Python
bookkeeping, so arming a run cannot perturb simulated time.  The
disabled path is the absence of a recorder — call sites hold
``self.obs = None`` and guard with one ``is None`` test — mirroring the
falsy-``Tracer`` convention documented in :mod:`repro.sim.trace`.

Internal timestamps components stash in ``meta`` use keys starting
with ``"_obs"``; :func:`public_meta` strips them when a frame leaves
the host so wire metadata stays clean.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

__all__ = ["Span", "SpanRecorder", "public_meta"]

#: Frame/request metadata key carrying the (trace_id, span_id) context.
CTX_KEY = "obs"


def public_meta(meta: dict) -> dict:
    """``meta`` without the recorder's internal ``_obs*`` stamps."""
    if any(key.startswith("_obs") for key in meta):
        return {k: v for k, v in meta.items() if not k.startswith("_obs")}
    return meta


class Span:
    """One named interval in one layer of one request's life."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "layer",
                 "start_ns", "end_ns", "fields")

    def __init__(self, trace_id: int, span_id: int, parent_id: Optional[int],
                 name: str, layer: str, start_ns: float,
                 end_ns: Optional[float] = None,
                 fields: Optional[dict] = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.layer = layer
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.fields = fields or {}

    @property
    def finished(self) -> bool:
        return self.end_ns is not None

    @property
    def duration_ns(self) -> float:
        if self.end_ns is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end_ns - self.start_ns

    @property
    def ctx(self) -> tuple[int, int]:
        """The context to propagate for children of this span."""
        return (self.trace_id, self.span_id)

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "layer": self.layer,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "fields": dict(self.fields),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration_ns:.0f}ns" if self.finished else "open"
        return (f"<Span {self.name} trace={self.trace_id} "
                f"id={self.span_id} {state}>")


class SpanRecorder:
    """Collects span trees for every traced request in a run.

    Optionally mirrors finished spans into a :class:`Tracer` as
    category-``"span"`` records so existing trace queries see them.
    """

    def __init__(self, sim, tracer=None):
        self.sim = sim
        self.tracer = tracer
        self.spans: list[Span] = []
        self._by_id: dict[int, Span] = {}
        self._next_trace_id = 1
        self._next_span_id = 1
        #: optional :class:`repro.obs.flight.FlightRecorder`; when set,
        #: span opens/closes also land in the flight ring (one ``is
        #: None`` test per span event, host-side only)
        self.flight = None
        #: optional :class:`repro.obs.slo.SLOTracker`; when set, root
        #: span opens/closes feed its error-budget ledgers (same one
        #: ``is None`` convention, host-side only)
        self.slo = None
        #: when True, the Lauberhorn demux annotates each root span
        #: with the serving (host, tenant, service) via
        #: :meth:`annotate`.  Off by default so pre-existing armed
        #: artifacts (and their golden digests) are byte-identical.
        self.tag_origin = False

    # -- creation -------------------------------------------------------------

    def _new(self, trace_id: int, parent_id: Optional[int], name: str,
             layer: str, start_ns: float, end_ns: Optional[float],
             fields: dict) -> Span:
        span = Span(trace_id, self._next_span_id, parent_id, name, layer,
                    start_ns, end_ns, fields)
        self._next_span_id += 1
        self.spans.append(span)
        self._by_id[span.span_id] = span
        flight = self.flight
        if flight is not None:
            flight.note("span.open" if end_ns is None else "span",
                        name=name, layer=layer, trace_id=trace_id,
                        span_id=span.span_id)
        return span

    def start_trace(self, name: str, layer: str, **fields: Any) -> Span:
        """Open the root span of a fresh trace (one per request)."""
        trace_id = self._next_trace_id
        self._next_trace_id += 1
        span = self._new(trace_id, None, name, layer, self.sim.now, None,
                         fields)
        slo = self.slo
        if slo is not None:
            slo.note_root_start(span)
        return span

    def start(self, name: str, layer: str, ctx: tuple[int, int],
              **fields: Any) -> Span:
        """Open a child span under the propagated ``ctx``."""
        trace_id, parent_id = ctx
        return self._new(trace_id, parent_id, name, layer, self.sim.now,
                         None, fields)

    def finish(self, span: Span, **fields: Any) -> float:
        """Close an open span at the current sim time; returns duration."""
        if span.end_ns is not None:
            raise ValueError(f"span {span.name!r} already closed")
        span.end_ns = self.sim.now
        if fields:
            span.fields.update(fields)
        flight = self.flight
        if flight is not None:
            flight.note("span.close", name=span.name, layer=span.layer,
                        trace_id=span.trace_id, span_id=span.span_id,
                        duration_ns=span.duration_ns)
        slo = self.slo
        if slo is not None and span.parent_id is None:
            slo.observe_root(span)
        self._mirror(span)
        return span.duration_ns

    def record(self, name: str, layer: str, ctx: tuple[int, int],
               start_ns: float, end_ns: float, **fields: Any) -> Span:
        """Record an already-elapsed interval (synthesized span)."""
        trace_id, parent_id = ctx
        span = self._new(trace_id, parent_id, name, layer, start_ns, end_ns,
                         fields)
        self._mirror(span)
        return span

    def annotate(self, ctx: tuple[int, int], **fields: Any) -> None:
        """Attach fields to the span addressed by ``ctx``.

        Used by the Lauberhorn demux (when :attr:`tag_origin` is on)
        to stamp the *root* span with the serving host, the tenant
        resolved from the service, and the service name — the root's
        span id is exactly what rides in ``Frame.meta["obs"]``.  Pure
        bookkeeping: never touches the simulator.
        """
        span = self._by_id.get(ctx[1])
        if span is not None:
            span.fields.update(fields)

    def _mirror(self, span: Span) -> None:
        tracer = self.tracer
        if tracer:
            tracer.emit(
                "span", span.name,
                trace_id=span.trace_id, span_id=span.span_id,
                parent_id=span.parent_id, layer=span.layer,
                start_ns=span.start_ns, duration_ns=span.duration_ns,
            )

    # -- queries --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def traces(self) -> dict[int, list[Span]]:
        """Spans grouped by trace id, in recording order."""
        grouped: dict[int, list[Span]] = {}
        for span in self.spans:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def roots(self) -> Iterator[Span]:
        return (span for span in self.spans if span.parent_id is None)

    def open_spans(self) -> list[Span]:
        return [span for span in self.spans if not span.finished]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans
                if s.parent_id == span.span_id and s.trace_id == span.trace_id]

    # -- integrity ------------------------------------------------------------

    def check_integrity(self, require_closed: bool = True) -> list[str]:
        """Structural violations of the span-tree invariants.

        Every non-root span's parent must exist *in the same trace*;
        every trace must have exactly one root; spans must not end
        before they start; and (unless ``require_closed`` is False, for
        runs cut short by faults or timeouts) every span must be
        closed.  Returns human-readable violations; empty means clean.
        """
        problems: list[str] = []
        for span in self.spans:
            if span.parent_id is not None:
                parent = self._by_id.get(span.parent_id)
                if parent is None:
                    problems.append(
                        f"span {span.span_id} ({span.name}): parent "
                        f"{span.parent_id} does not exist")
                elif parent.trace_id != span.trace_id:
                    problems.append(
                        f"span {span.span_id} ({span.name}): parent in "
                        f"trace {parent.trace_id}, not {span.trace_id}")
            if span.finished and span.end_ns < span.start_ns:
                problems.append(
                    f"span {span.span_id} ({span.name}): ends "
                    f"{span.start_ns - span.end_ns:.0f} ns before it starts")
            if require_closed and not span.finished:
                problems.append(
                    f"span {span.span_id} ({span.name}) in trace "
                    f"{span.trace_id} was never closed")
        for trace_id, spans in self.traces().items():
            n_roots = sum(1 for s in spans if s.parent_id is None)
            if n_roots != 1:
                problems.append(
                    f"trace {trace_id}: {n_roots} root spans (want 1)")
        return problems
