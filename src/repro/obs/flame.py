"""Flamegraph folding over span trees: exact simulated-ns, no sampling.

A classic flamegraph is built from stack *samples*; in a simulator we
can do better, because every span's start and end are known exactly.
:func:`fold_spans` walks each finished span tree and attributes each
span's **self time** — its duration minus the summed durations of its
children — to the stack of span names leading to it, grouped by the
``(host, tenant)`` labels the Lauberhorn demux annotates onto root
spans.  Arithmetic runs in exact rationals (:class:`~fractions.Fraction`
over the recorded floats), so the folded profile's summed self time
equals the summed root durations *identically* per group — the E25
validator checks float equality of the two, which exact rationals
guarantee by construction (floats are exact binary rationals; the
telescoping sum has no rounding anywhere).

Two exporters ship the profile out of the repo's world:
:func:`render_collapsed` emits Brendan-Gregg collapsed-stack text
(``host0;victim;rpc;nic.rx 123.5``) for ``flamegraph.pl``-style
tooling, and :func:`speedscope_json` emits a speedscope file (one
sampled-profile per group, nanosecond unit) that
https://speedscope.app renders directly; :func:`validate_speedscope`
schema-checks the latter and is run in CI.

:class:`HostCpuProfiler` is the host-side twin: it wraps the engine
run loop in bounded slices and times each with ``perf_counter_ns``,
yielding a wall-clock profile of *the simulator itself* (events/sec
per simulated phase) for the ROADMAP 10×-throughput hunt.  Wall times
are inherently nondeterministic, so they never feed golden-pinned
artifacts — the profiler is a reporting tool only.
"""

from __future__ import annotations

import time
from fractions import Fraction
from typing import Any, Iterable, Optional

__all__ = ["FlameProfile", "fold_spans", "render_collapsed",
           "speedscope_json", "validate_speedscope", "diff_stacks",
           "HostCpuProfiler"]

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"

#: group label used when a root span carries no host/tenant annotation
#: (single-host, untenanted runs — the historical default)
UNTAGGED = "-"


class FlameProfile:
    """Collapsed stacks per (host, tenant) group, exact to the span ns.

    Weights are kept as :class:`~fractions.Fraction` internally;
    :meth:`stacks` and the exporters round to float only at the edge.
    """

    def __init__(self, group_by: tuple[str, ...] = ("host", "tenant")):
        self.group_by = tuple(group_by)
        self._stacks: dict[str, dict[tuple[str, ...], Fraction]] = {}
        self._root_sum: dict[str, Fraction] = {}
        self._n_traces: dict[str, int] = {}
        self.negative_self = 0  # spans whose children overlap/overrun

    # -- building -------------------------------------------------------------

    def group_label(self, fields: dict) -> str:
        return "/".join(
            str(fields.get(key, UNTAGGED)) for key in self.group_by)

    def add_trace(self, group: str, root_duration: Fraction,
                  stacks: Iterable[tuple[tuple[str, ...], Fraction]]) -> None:
        bucket = self._stacks.setdefault(group, {})
        for stack, weight in stacks:
            bucket[stack] = bucket.get(stack, Fraction(0)) + weight
            if weight < 0:
                self.negative_self += 1
        self._root_sum[group] = (
            self._root_sum.get(group, Fraction(0)) + root_duration)
        self._n_traces[group] = self._n_traces.get(group, 0) + 1

    # -- queries --------------------------------------------------------------

    def groups(self) -> list[str]:
        return sorted(self._stacks)

    def stacks(self, group: str) -> dict[tuple[str, ...], float]:
        return {stack: float(weight)
                for stack, weight in self._stacks[group].items()}

    def n_traces(self, group: str) -> int:
        return self._n_traces.get(group, 0)

    def self_sum_ns(self, group: str) -> float:
        return float(sum(self._stacks[group].values(), Fraction(0)))

    def root_sum_ns(self, group: str) -> float:
        return float(self._root_sum.get(group, Fraction(0)))

    def check_exact(self) -> list[str]:
        """Groups whose folded self time != summed root durations.

        Empty by construction; kept as a harness the validator can run
        rather than an assumption it must trust.
        """
        problems = []
        for group in self.groups():
            folded = sum(self._stacks[group].values(), Fraction(0))
            roots = self._root_sum.get(group, Fraction(0))
            if folded != roots:
                problems.append(
                    f"group {group}: folded {float(folded)} ns != "
                    f"root {float(roots)} ns")
        return problems

    def as_dict(self) -> dict[str, Any]:
        """JSON-able view: stacks keyed ``"a;b;c"`` with float weights."""
        groups = {}
        for group in self.groups():
            groups[group] = {
                "n_traces": self.n_traces(group),
                "self_sum_ns": self.self_sum_ns(group),
                "root_sum_ns": self.root_sum_ns(group),
                "stacks": {
                    ";".join(stack): float(weight)
                    for stack, weight in sorted(self._stacks[group].items())
                },
            }
        return {
            "group_by": list(self.group_by),
            "negative_self": self.negative_self,
            "groups": groups,
        }


def fold_spans(recorder, group_by: tuple[str, ...] = ("host", "tenant"),
               ) -> FlameProfile:
    """Fold every finished span tree into a :class:`FlameProfile`.

    Traces whose root never finished are skipped whole (nothing to
    attribute); unfinished child spans are skipped individually, their
    time staying in the parent's self bucket.  A span whose finished
    children overlap (or overrun it) gets a *negative* self weight —
    deliberately not clamped, so the telescoping identity
    ``sum(self) == root duration`` stays exact; the profile counts
    such spans in :attr:`FlameProfile.negative_self`.
    """
    profile = FlameProfile(group_by)
    for spans in recorder.traces().values():
        root = None
        for span in spans:
            if span.parent_id is None:
                root = span
                break
        if root is None or not root.finished:
            continue
        finished = [span for span in spans if span.finished]
        children: dict[int, list] = {}
        for span in finished:
            if span.parent_id is not None:
                children.setdefault(span.parent_id, []).append(span)
        group = profile.group_label(root.fields)
        stacks: list[tuple[tuple[str, ...], Fraction]] = []

        def walk(span, path: tuple[str, ...]) -> None:
            stack = path + (span.name,)
            self_ns = Fraction(span.end_ns) - Fraction(span.start_ns)
            for child in children.get(span.span_id, ()):
                self_ns -= (Fraction(child.end_ns)
                            - Fraction(child.start_ns))
                walk(child, stack)
            stacks.append((stack, self_ns))

        walk(root, ())
        root_duration = Fraction(root.end_ns) - Fraction(root.start_ns)
        profile.add_trace(group, root_duration, stacks)
    return profile


def diff_stacks(profile: FlameProfile, group_a: str, group_b: str,
                ) -> dict[str, float]:
    """Per-stack ``weight(a) - weight(b)``, for victim-vs-aggressor diffs.

    Stacks are keyed in collapsed form (``"rpc;nic.rx"``); a positive
    value means ``group_a`` spent more simulated ns there.
    """
    a = profile._stacks.get(group_a, {})
    b = profile._stacks.get(group_b, {})
    out: dict[str, float] = {}
    for stack in sorted(set(a) | set(b)):
        delta = a.get(stack, Fraction(0)) - b.get(stack, Fraction(0))
        out[";".join(stack)] = float(delta)
    return out


# -- exporters ----------------------------------------------------------------

def render_collapsed(profile: FlameProfile,
                     group: Optional[str] = None) -> str:
    """Brendan-Gregg collapsed-stack text, one ``frames weight`` line.

    The group label is folded in as leading frames
    (``host0;victim;rpc;nic.rx 123.500``) so a single file holds every
    tenant and standard flamegraph tooling still groups them visually.
    """
    lines = []
    groups = [group] if group is not None else profile.groups()
    for label in groups:
        prefix = tuple(label.split("/"))
        for stack, weight in sorted(profile._stacks[label].items()):
            frames = ";".join(prefix + stack)
            lines.append(f"{frames} {float(weight):.3f}")
    return "\n".join(lines)


def speedscope_json(profile: FlameProfile,
                    name: str = "repro-sim-flame") -> dict:
    """Speedscope file: one sampled profile per (host, tenant) group."""
    frame_index: dict[str, int] = {}
    frames: list[dict] = []

    def frame_of(frame_name: str) -> int:
        index = frame_index.get(frame_name)
        if index is None:
            index = len(frames)
            frame_index[frame_name] = index
            frames.append({"name": frame_name})
        return index

    profiles = []
    for group in profile.groups():
        samples: list[list[int]] = []
        weights: list[float] = []
        total = Fraction(0)
        for stack, weight in sorted(profile._stacks[group].items()):
            samples.append([frame_of(frame) for frame in stack])
            weights.append(float(weight))
            total += weight
        profiles.append({
            "type": "sampled",
            "name": group,
            "unit": "nanoseconds",
            "startValue": 0.0,
            "endValue": float(total),
            "samples": samples,
            "weights": weights,
        })
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "exporter": "repro.obs.flame",
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": profiles,
    }


def validate_speedscope(payload: dict) -> None:
    """Raise ``ValueError`` unless ``payload`` is a sane speedscope file."""
    if payload.get("$schema") != SPEEDSCOPE_SCHEMA:
        raise ValueError(f"bad $schema: {payload.get('$schema')!r}")
    shared = payload.get("shared")
    if not isinstance(shared, dict):
        raise ValueError("missing shared section")
    frames = shared.get("frames")
    if not isinstance(frames, list):
        raise ValueError("shared.frames must be a list")
    for i, frame in enumerate(frames):
        if not isinstance(frame, dict) or "name" not in frame:
            raise ValueError(f"frame {i} has no name")
    profiles = payload.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        raise ValueError("profiles must be a non-empty list")
    for profile in profiles:
        if profile.get("type") != "sampled":
            raise ValueError(f"profile {profile.get('name')!r}: "
                             "only sampled profiles are emitted")
        if profile.get("unit") != "nanoseconds":
            raise ValueError(f"profile {profile.get('name')!r}: "
                             f"bad unit {profile.get('unit')!r}")
        samples = profile.get("samples")
        weights = profile.get("weights")
        if not isinstance(samples, list) or not isinstance(weights, list):
            raise ValueError("samples/weights must be lists")
        if len(samples) != len(weights):
            raise ValueError(
                f"profile {profile.get('name')!r}: {len(samples)} samples "
                f"vs {len(weights)} weights")
        for sample in samples:
            for index in sample:
                if not 0 <= index < len(frames):
                    raise ValueError(f"frame index {index} out of range")
    index = payload.get("activeProfileIndex", 0)
    if not 0 <= index < len(profiles):
        raise ValueError("activeProfileIndex out of range")


# -- host-CPU mode ------------------------------------------------------------

class HostCpuProfiler:
    """Profile the *simulator's own* run loop in wall-clock slices.

    Drives ``sim.run`` in ``n_slices`` bounded steps over a horizon,
    timing each slice with ``time.perf_counter_ns`` and diffing the
    engine's dispatched-event counter, so hot simulated phases (storm
    onset, drain, quiesce) show up as wide frames.  Export with
    :meth:`to_speedscope`; numbers are host wall time and must never
    enter a golden-pinned artifact.
    """

    def __init__(self, sim, n_slices: int = 32):
        if n_slices < 1:
            raise ValueError("need at least one slice")
        self.sim = sim
        self.n_slices = n_slices
        #: (t0_ns, t1_ns, wall_ns, events) per executed slice
        self.slices: list[tuple[float, float, int, int]] = []

    def run(self, until_ns: float) -> None:
        sim = self.sim
        start = sim.now
        if until_ns <= start:
            raise ValueError("horizon must lie ahead of sim.now")
        step = (until_ns - start) / self.n_slices
        for i in range(self.n_slices):
            t0 = sim.now
            target = min(until_ns, start + (i + 1) * step)
            before = getattr(sim, "_stat_dispatched", 0)
            wall0 = time.perf_counter_ns()
            sim.run(until=target)
            wall = time.perf_counter_ns() - wall0
            events = getattr(sim, "_stat_dispatched", 0) - before
            self.slices.append((t0, sim.now, wall, events))

    def events_per_sec(self) -> float:
        wall = sum(s[2] for s in self.slices)
        events = sum(s[3] for s in self.slices)
        if wall <= 0:
            return 0.0
        return events / (wall / 1e9)

    def to_speedscope(self, name: str = "repro-host-cpu") -> dict:
        frames = [{"name": "engine.run"}]
        samples: list[list[int]] = []
        weights: list[float] = []
        for t0, t1, wall, events in self.slices:
            label = (f"sim[{t0:.0f}..{t1:.0f})ns "
                     f"{events} ev")
            frames.append({"name": label})
            samples.append([0, len(frames) - 1])
            weights.append(float(wall))
        return {
            "$schema": SPEEDSCOPE_SCHEMA,
            "name": name,
            "exporter": "repro.obs.flame",
            "activeProfileIndex": 0,
            "shared": {"frames": frames},
            "profiles": [{
                "type": "sampled",
                "name": "host-cpu",
                "unit": "nanoseconds",
                "startValue": 0.0,
                "endValue": float(sum(weights)),
                "samples": samples,
                "weights": weights,
            }],
        }
