"""Tail forensics: join slow requests with concurrent system state.

A p99.9 span tree says *where* a slow request spent its time; it does
not say *why* — was the run queue deep, was the NIC ring full, was a
fault storm in progress?  This module answers that by joining the
three observability layers this package records:

* the **span trees** of the slowest requests
  (:class:`~repro.obs.spans.SpanRecorder`);
* the **time-series windows** each slow request overlaps
  (:class:`~repro.obs.timeseries.TimeSeriesSampler`) — run-queue
  depth, ring/backlog occupancy, utilisation, fault counters *while
  the request was in flight*;
* the **flight-recorder events** inside the request's lifetime
  (:class:`~repro.obs.flight.FlightRecorder`) — scheduler decisions,
  Tryagain bounces, injected faults.

:func:`tail_report` produces one JSON-able record per slow request;
:func:`render_tail_report` prints the human version.  Everything here
is pure post-processing over already-recorded data — nothing touches
the simulator.
"""

from __future__ import annotations

import re
from typing import Any, Iterable, Optional

__all__ = ["STATE_PATTERNS", "slow_roots", "slow_roots_by_group",
           "tail_report", "render_tail_report"]

#: snapshot-key substrings that count as "concurrent system state" in
#: the per-request join: run-queue depth, ring/backlog occupancy,
#: socket queues, idle-core count, Tryagain/fault activity, and — when
#: a tenant table is attached — the tenancy ledger (policing drops,
#: admissions, DWRR backlog and held CONTROL lines).
STATE_PATTERNS = (
    "runnable", "runq", ".depth", "backlog", "queue", "idle_cores",
    "tryagain", "fault", "drop", "stall",
    "rate_dropped", "admitted", "queued_now", "held_now",
)

#: fleet metric namespaces are ``host<i>.component.metric``; requests
#: annotated with a serving host join only their own host's state
_HOST_PREFIX = re.compile(r"^(host\d+)\.")


def metric_host(name: str) -> Optional[str]:
    """The ``host<i>`` namespace owning a metric, or None if unscoped."""
    match = _HOST_PREFIX.match(name)
    return match.group(1) if match else None


def _percentile_threshold(values: list[float], quantile: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(quantile * len(ordered)))
    return ordered[index]


def slow_roots(recorder, quantile: float = 0.999) -> list:
    """Finished root spans at or above the ``quantile`` duration.

    Always non-empty when any root finished: the slowest request is its
    own p-anything, so every report has at least one subject.
    """
    roots = [span for span in recorder.roots() if span.finished]
    if not roots:
        return []
    threshold = _percentile_threshold(
        [span.duration_ns for span in roots], quantile)
    slow = [span for span in roots if span.duration_ns >= threshold]
    slow.sort(key=lambda span: (-span.duration_ns, span.trace_id))
    return slow


def slow_roots_by_group(recorder, quantile: float = 0.999,
                        ) -> dict[tuple[str, str], list]:
    """:func:`slow_roots` bucketed by the ``(host, tenant)`` labels.

    Roots without origin annotation (single-host, untenanted runs)
    land under ``("-", "-")`` — the report shape is uniform whether or
    not demux tagging was on.
    """
    grouped: dict[tuple[str, str], list] = {}
    for root in slow_roots(recorder, quantile):
        key = (root.fields.get("host", "-"), root.fields.get("tenant", "-"))
        grouped.setdefault(key, []).append(root)
    return grouped


def _matches(name: str, patterns: Iterable[str]) -> bool:
    return any(pattern in name for pattern in patterns)


def _state_over(windows, patterns,
                host: Optional[str] = None) -> dict[str, dict[str, float]]:
    """``{metric: {min,mean,max}}`` for state keys across windows.

    With ``host`` given, metrics living in *another* host's fleet
    namespace are excluded from the join — a slow request on host2
    should not be explained by host5's run queue.  Unscoped metrics
    (shared switches, clients, single-host runs) always join.
    """
    samples: dict[str, list[float]] = {}
    for window in windows:
        for name, value in window.values.items():
            if _matches(name, patterns):
                if host is not None:
                    owner = metric_host(name)
                    if owner is not None and owner != host:
                        continue
                samples.setdefault(name, []).append(value)
    return {
        name: {
            "min": min(values),
            "mean": sum(values) / len(values),
            "max": max(values),
        }
        for name, values in sorted(samples.items())
    }


def tail_report(
    recorder,
    sampler,
    flight=None,
    quantile: float = 0.999,
    patterns: Iterable[str] = STATE_PATTERNS,
    max_requests: int = 16,
) -> dict[str, Any]:
    """Per-slow-request forensics joining spans, windows, and flight.

    Every request at or above the ``quantile`` RTT (capped at
    ``max_requests``, slowest first) gets one record carrying its span
    breakdown, the time-series windows it overlapped, the state
    summary over those windows, and the flight events inside its
    lifetime.  ``windows_missing`` flags requests whose windows were
    already evicted from the sampler's ring.
    """
    roots = [span for span in recorder.roots() if span.finished]
    durations = [span.duration_ns for span in roots]
    slow = slow_roots(recorder, quantile)
    truncated = max(0, len(slow) - max_requests)
    by_trace = recorder.traces()

    requests = []
    tagged = False
    for root in slow[:max_requests]:
        windows = sampler.overlapping(root.start_ns, root.end_ns)
        stages: dict[str, float] = {}
        for span in by_trace.get(root.trace_id, ()):
            if span is not root and span.finished:
                stages[span.name] = (
                    stages.get(span.name, 0.0) + span.duration_ns)
        host = root.fields.get("host")
        tenant = root.fields.get("tenant")
        record: dict[str, Any] = {
            "trace_id": root.trace_id,
            "start_ns": root.start_ns,
            "end_ns": root.end_ns,
            "duration_ns": root.duration_ns,
            "stages": stages,
            "window_indices": [w.index for w in windows],
            "windows_missing": not windows,
            "state": _state_over(windows, patterns, host),
        }
        # origin keys appear only when the demux annotated the root
        # (tag_origin), so historical payloads are byte-identical
        if host is not None:
            record["host"] = host
            tagged = True
        if tenant is not None:
            record["tenant"] = tenant
            tagged = True
        if flight is not None:
            record["flight"] = flight.events_between(
                root.start_ns, root.end_ns)
        requests.append(record)

    report: dict[str, Any] = {
        "quantile": quantile,
        "n_requests": len(roots),
        "threshold_ns": (_percentile_threshold(durations, quantile)
                         if durations else 0.0),
        "n_slow": len(slow),
        "truncated": truncated,
        "requests": requests,
    }
    if tagged:
        # (host, tenant) attribution over *all* slow roots, not just
        # the truncated top-N records
        groups: dict[str, dict[str, float]] = {}
        for root in slow:
            key = (f"{root.fields.get('host', '-')}/"
                   f"{root.fields.get('tenant', '-')}")
            bucket = groups.setdefault(
                key, {"n_slow": 0, "worst_ns": 0.0, "total_ns": 0.0})
            bucket["n_slow"] += 1
            bucket["worst_ns"] = max(bucket["worst_ns"], root.duration_ns)
            bucket["total_ns"] += root.duration_ns
        report["groups"] = dict(sorted(groups.items()))
    return report


def render_tail_report(report: dict, title: str = "tail") -> str:
    """The human-readable version of a :func:`tail_report` payload."""
    lines = [
        f"{title} — p{report['quantile'] * 100:g} forensics "
        f"({report['n_slow']}/{report['n_requests']} requests at or above "
        f"{report['threshold_ns']:.0f} ns)"
    ]
    groups = report.get("groups")
    if groups:
        for key, bucket in groups.items():
            lines.append(
                f"  [{key}] {bucket['n_slow']} slow, "
                f"worst {bucket['worst_ns']:.0f} ns")
    for record in report["requests"]:
        origin = ""
        if "host" in record or "tenant" in record:
            origin = (f" ({record.get('host', '-')}/"
                      f"{record.get('tenant', '-')})")
        lines.append(
            f"  trace {record['trace_id']}: {record['duration_ns']:.0f} ns "
            f"[{record['start_ns']:.0f} .. {record['end_ns']:.0f}]"
            f"{origin}")
        stages = sorted(record["stages"].items(),
                        key=lambda item: -item[1])
        for name, duration in stages[:6]:
            lines.append(f"    {name:<14} {duration:>12.1f} ns")
        if record["windows_missing"]:
            lines.append("    (windows evicted from the sampler ring)")
        busiest = sorted(record["state"].items(),
                         key=lambda item: -item[1]["max"])
        for name, stat in busiest[:6]:
            lines.append(
                f"    {name:<38} max {stat['max']:>8.1f} "
                f"mean {stat['mean']:>8.1f}")
        flight_events: Optional[list] = record.get("flight")
        if flight_events is not None:
            lines.append(f"    {len(flight_events)} flight event(s) "
                         "during this request")
    return "\n".join(lines)
