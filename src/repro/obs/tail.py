"""Tail forensics: join slow requests with concurrent system state.

A p99.9 span tree says *where* a slow request spent its time; it does
not say *why* — was the run queue deep, was the NIC ring full, was a
fault storm in progress?  This module answers that by joining the
three observability layers this package records:

* the **span trees** of the slowest requests
  (:class:`~repro.obs.spans.SpanRecorder`);
* the **time-series windows** each slow request overlaps
  (:class:`~repro.obs.timeseries.TimeSeriesSampler`) — run-queue
  depth, ring/backlog occupancy, utilisation, fault counters *while
  the request was in flight*;
* the **flight-recorder events** inside the request's lifetime
  (:class:`~repro.obs.flight.FlightRecorder`) — scheduler decisions,
  Tryagain bounces, injected faults.

:func:`tail_report` produces one JSON-able record per slow request;
:func:`render_tail_report` prints the human version.  Everything here
is pure post-processing over already-recorded data — nothing touches
the simulator.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

__all__ = ["STATE_PATTERNS", "slow_roots", "tail_report",
           "render_tail_report"]

#: snapshot-key substrings that count as "concurrent system state" in
#: the per-request join: run-queue depth, ring/backlog occupancy,
#: socket queues, idle-core count, Tryagain and fault activity.
STATE_PATTERNS = (
    "runnable", "runq", ".depth", "backlog", "queue", "idle_cores",
    "tryagain", "fault", "drop", "stall",
)


def _percentile_threshold(values: list[float], quantile: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(quantile * len(ordered)))
    return ordered[index]


def slow_roots(recorder, quantile: float = 0.999) -> list:
    """Finished root spans at or above the ``quantile`` duration.

    Always non-empty when any root finished: the slowest request is its
    own p-anything, so every report has at least one subject.
    """
    roots = [span for span in recorder.roots() if span.finished]
    if not roots:
        return []
    threshold = _percentile_threshold(
        [span.duration_ns for span in roots], quantile)
    slow = [span for span in roots if span.duration_ns >= threshold]
    slow.sort(key=lambda span: (-span.duration_ns, span.trace_id))
    return slow


def _matches(name: str, patterns: Iterable[str]) -> bool:
    return any(pattern in name for pattern in patterns)


def _state_over(windows, patterns) -> dict[str, dict[str, float]]:
    """``{metric: {min,mean,max}}`` for state keys across windows."""
    samples: dict[str, list[float]] = {}
    for window in windows:
        for name, value in window.values.items():
            if _matches(name, patterns):
                samples.setdefault(name, []).append(value)
    return {
        name: {
            "min": min(values),
            "mean": sum(values) / len(values),
            "max": max(values),
        }
        for name, values in sorted(samples.items())
    }


def tail_report(
    recorder,
    sampler,
    flight=None,
    quantile: float = 0.999,
    patterns: Iterable[str] = STATE_PATTERNS,
    max_requests: int = 16,
) -> dict[str, Any]:
    """Per-slow-request forensics joining spans, windows, and flight.

    Every request at or above the ``quantile`` RTT (capped at
    ``max_requests``, slowest first) gets one record carrying its span
    breakdown, the time-series windows it overlapped, the state
    summary over those windows, and the flight events inside its
    lifetime.  ``windows_missing`` flags requests whose windows were
    already evicted from the sampler's ring.
    """
    roots = [span for span in recorder.roots() if span.finished]
    durations = [span.duration_ns for span in roots]
    slow = slow_roots(recorder, quantile)
    truncated = max(0, len(slow) - max_requests)
    by_trace = recorder.traces()

    requests = []
    for root in slow[:max_requests]:
        windows = sampler.overlapping(root.start_ns, root.end_ns)
        stages: dict[str, float] = {}
        for span in by_trace.get(root.trace_id, ()):
            if span is not root and span.finished:
                stages[span.name] = (
                    stages.get(span.name, 0.0) + span.duration_ns)
        record: dict[str, Any] = {
            "trace_id": root.trace_id,
            "start_ns": root.start_ns,
            "end_ns": root.end_ns,
            "duration_ns": root.duration_ns,
            "stages": stages,
            "window_indices": [w.index for w in windows],
            "windows_missing": not windows,
            "state": _state_over(windows, patterns),
        }
        if flight is not None:
            record["flight"] = flight.events_between(
                root.start_ns, root.end_ns)
        requests.append(record)

    return {
        "quantile": quantile,
        "n_requests": len(roots),
        "threshold_ns": (_percentile_threshold(durations, quantile)
                         if durations else 0.0),
        "n_slow": len(slow),
        "truncated": truncated,
        "requests": requests,
    }


def render_tail_report(report: dict, title: str = "tail") -> str:
    """The human-readable version of a :func:`tail_report` payload."""
    lines = [
        f"{title} — p{report['quantile'] * 100:g} forensics "
        f"({report['n_slow']}/{report['n_requests']} requests at or above "
        f"{report['threshold_ns']:.0f} ns)"
    ]
    for record in report["requests"]:
        lines.append(
            f"  trace {record['trace_id']}: {record['duration_ns']:.0f} ns "
            f"[{record['start_ns']:.0f} .. {record['end_ns']:.0f}]")
        stages = sorted(record["stages"].items(),
                        key=lambda item: -item[1])
        for name, duration in stages[:6]:
            lines.append(f"    {name:<14} {duration:>12.1f} ns")
        if record["windows_missing"]:
            lines.append("    (windows evicted from the sampler ring)")
        busiest = sorted(record["state"].items(),
                         key=lambda item: -item[1]["max"])
        for name, stat in busiest[:6]:
            lines.append(
                f"    {name:<38} max {stat['max']:>8.1f} "
                f"mean {stat['mean']:>8.1f}")
        flight_events: Optional[list] = record.get("flight")
        if flight_events is not None:
            lines.append(f"    {len(flight_events)} flight event(s) "
                         "during this request")
    return "\n".join(lines)
