"""One-call arming of a testbed: spans on, metrics bound.

The span hooks live in the components themselves (client, NICs, the
kernel netstack), each guarded by an ``obs is None`` test so unarmed
runs pay a single attribute check.  :func:`arm_testbed` flips them all
on with one shared :class:`~repro.obs.spans.SpanRecorder`;
:func:`bind_testbed_metrics` registers every component's stats objects
with a :class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

from typing import Optional

from .flight import FlightRecorder
from .metrics import MetricsRegistry
from .spans import SpanRecorder

__all__ = ["arm_testbed", "arm_flight", "bind_testbed_metrics"]


def _is_fleet(bed) -> bool:
    return hasattr(bed, "hosts")


def arm_testbed(bed, recorder: Optional[SpanRecorder] = None) -> SpanRecorder:
    """Attach a span recorder to every layer of an assembled testbed.

    Also accepts a :class:`repro.fleet.Fleet`: every host's NIC and
    netstack (and every client) share one recorder.
    """
    if _is_fleet(bed):
        if recorder is None:
            recorder = SpanRecorder(bed.sim,
                                    tracer=bed.hosts[0].machine.tracer)
        for client in bed.clients:
            client.obs = recorder
        for host in bed.hosts:
            host.nic.obs = recorder
            # label matches the host's metrics namespace (host<i>.*),
            # so span origin tags join against the right state rows
            host.nic.obs_host = f"host{host.index}"
            if host.netstack is not None:
                host.netstack.obs = recorder
        return recorder
    if recorder is None:
        recorder = SpanRecorder(bed.sim, tracer=bed.machine.tracer)
    for client in bed.clients:
        client.obs = recorder
    bed.nic.obs = recorder
    if bed.netstack is not None:
        bed.netstack.obs = recorder
    return recorder


def _arm_switch_flight(switch, flight: FlightRecorder) -> None:
    for port in switch.ports.values():
        for link in (port.ingress, port.egress):
            injector = getattr(link, "fault", None)
            if injector is not None:
                injector.flight = flight


def arm_flight(bed, flight: Optional[FlightRecorder] = None,
               recorder: Optional[SpanRecorder] = None,
               capacity: int = 512) -> FlightRecorder:
    """Attach one flight recorder to every event source in a testbed.

    Feeds: scheduler dispatch decisions (kernel), Tryagain bounces and
    ring stalls (NIC), wire fault injections (link injectors, when a
    fault plan is active), and — when ``recorder`` is passed — span
    opens/closes.  Pair with ``checks.flight = flight`` to get the
    dump-on-violation post-mortem.

    For a :class:`repro.fleet.Fleet`, every host's NIC/kernel and every
    switch's ports (ToRs, spine, trunks) feed the same ring — no
    single-machine assumption.
    """
    if _is_fleet(bed):
        if flight is None:
            flight = FlightRecorder(bed.sim, capacity=capacity)
        for host in bed.hosts:
            host.nic.flight = flight
            if host.kernel is not None:
                host.kernel.flight = flight
        for switch in bed.switches:
            _arm_switch_flight(switch, flight)
        if recorder is not None:
            recorder.flight = flight
        return flight
    if flight is None:
        flight = FlightRecorder(bed.sim, capacity=capacity)
    bed.nic.flight = flight
    if bed.kernel is not None:
        bed.kernel.flight = flight
    _arm_switch_flight(bed.switch, flight)
    if recorder is not None:
        recorder.flight = flight
    return flight


def _bind_client_metrics(registry: MetricsRegistry, client,
                         prefix: str) -> None:
    registry.probe(prefix, lambda c=client: {
        "outstanding": c.outstanding,
        "parse_errors": c.parse_errors,
        "unmatched_responses": c.unmatched_responses,
        "retries": c.retries,
        "give_ups": c.give_ups,
    })


def bind_testbed_metrics(bed, registry: Optional[MetricsRegistry] = None,
                         prefix: str = "") -> MetricsRegistry:
    """Bind every component's stats into one registry namespace.

    For a :class:`repro.fleet.Fleet`, each host's rows are namespaced
    ``host<i>.*`` (so identically named NICs/kernels never collide),
    every switch is bound under its own name (``switch`` for the
    degenerate 1-ToR fabric, else ``tor0``/``tor1``/…/``spine``), and
    clients are bound once fleet-wide.
    """
    if registry is None:
        registry = MetricsRegistry()
    p = f"{prefix}." if prefix else ""
    if _is_fleet(bed):
        for host in bed.hosts:
            hp = f"{p}host{host.index}"
            host.machine.bind_metrics(registry, prefix=f"{hp}.machine")
            if host.kernel is not None:
                host.kernel.bind_metrics(registry, prefix=f"{hp}.kernel")
            host.nic.bind_metrics(registry, prefix=f"{hp}.nic")
            if host.netstack is not None:
                host.netstack.bind_metrics(registry,
                                           prefix=f"{hp}.netstack")
        for switch in bed.switches:
            switch.bind_metrics(registry, prefix=f"{p}{switch.name}")
        for client in bed.clients:
            _bind_client_metrics(registry, client, f"{p}{client.name}")
        return registry
    bed.machine.bind_metrics(registry, prefix=f"{p}machine")
    if bed.kernel is not None:
        bed.kernel.bind_metrics(registry, prefix=f"{p}kernel")
    bed.nic.bind_metrics(registry, prefix=f"{p}nic")
    if bed.netstack is not None:
        bed.netstack.bind_metrics(registry, prefix=f"{p}netstack")
    bed.switch.bind_metrics(registry, prefix=f"{p}switch")
    for client in bed.clients:
        _bind_client_metrics(registry, client, f"{p}{client.name}")
    return registry
