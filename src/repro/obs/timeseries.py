"""Windowed time-series sampling of a :class:`MetricsRegistry`.

Spans (:mod:`repro.obs.spans`) answer "where did *this request* go";
this module answers "what did *the system* look like over time" — the
Monarch/Prometheus half of the observability story.  A
:class:`TimeSeriesSampler` reads a registry snapshot every ``W`` ns of
simulated time into fixed-width :class:`Window` records, so queue
depths, ring occupancy, core utilisation, and Tryagain rates become
plottable series instead of a single end-of-run number.

Bounded by construction: the sampler keeps at most ``max_windows``
windows and counts exactly how many it had to drop
(:attr:`TimeSeriesSampler.dropped_windows`), mirroring the
flight-recorder contract — observability must never OOM the run it is
observing.

Determinism contract (the same one spans honour, asserted by E21):
sampling is **host-side only**.  The sampler does arm a periodic sim
timer (:meth:`repro.sim.engine.Simulator.periodic`), but the tick
callback only *reads* component state — it never advances simulated
time, consumes randomness, or mutates anything a simulation process
can see — so an armed run's simulated results are bit-identical to an
unarmed run's.

Derived rates: counters only ever go up, so per-window **rates** are
computed from successive snapshots (:meth:`rate_series`), turning e.g.
``nic.rx_frames`` into frames/second per window.  A value that moves
down between windows is a counter reset (a crashed-and-restarted
component re-binding its metric): the rate is clamped to zero and the
reset counted in :attr:`TimeSeriesSampler.rate_resets`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

__all__ = ["Window", "TimeSeriesSampler"]

#: nanoseconds per second, for counter-delta -> rate conversion
_NS_PER_S = 1e9


class Window:
    """One fixed-width sampling window: ``[start_ns, end_ns)`` + values."""

    __slots__ = ("index", "start_ns", "end_ns", "values")

    def __init__(self, index: int, start_ns: float, end_ns: float,
                 values: dict[str, float]):
        self.index = index
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.values = values

    @property
    def width_ns(self) -> float:
        return self.end_ns - self.start_ns

    @property
    def mid_ns(self) -> float:
        return (self.start_ns + self.end_ns) / 2.0

    def overlaps(self, start_ns: float, end_ns: float) -> bool:
        """True when this window intersects the span ``[start_ns, end_ns)``.

        Both the window and the span are half-open, matching the
        tail-forensics join in :mod:`repro.obs.tail`: a span that ends
        exactly on a window edge belongs to the window it *ends in*,
        never the one starting at that instant — so every span joins
        exactly one window per covered width (no double-count, no
        miss).  A zero-duration span (``end_ns == start_ns``) is an
        instant and joins the single window containing it.
        """
        if end_ns == start_ns:
            return self.start_ns <= start_ns < self.end_ns
        return self.end_ns > start_ns and self.start_ns < end_ns

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "values": dict(self.values),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Window {self.index} [{self.start_ns:.0f}, "
                f"{self.end_ns:.0f}) {len(self.values)} values>")


class TimeSeriesSampler:
    """Samples a registry snapshot into ring-bounded windows.

    Usage in a harness::

        registry = bind_testbed_metrics(bed)
        sampler = TimeSeriesSampler(bed.sim, registry, window_ns=500_000)
        sampler.start(horizon_ns)
        bed.machine.run(until=horizon_ns)
        sampler.finish()              # close the trailing partial window

    Only int/float snapshot entries land in windows (a gauge holding a
    string would poison rate math and the JSON artifact).
    """

    def __init__(self, sim, registry, window_ns: float = 250_000.0,
                 max_windows: int = 512):
        if window_ns <= 0:
            raise ValueError(f"non-positive window width: {window_ns}")
        if max_windows < 1:
            raise ValueError(f"need at least one window, got {max_windows}")
        self.sim = sim
        self.registry = registry
        self.window_ns = float(window_ns)
        self.max_windows = int(max_windows)
        self.windows: deque[Window] = deque()
        #: exact count of windows evicted from the ring
        self.dropped_windows = 0
        #: snapshots actually taken (== windows recorded, ever)
        self.samples = 0
        self._next_index = 0
        self._last_sample_ns: Optional[float] = None
        #: per-metric count of counter resets seen by :meth:`rate_series`
        self.rate_resets: dict[str, int] = {}
        #: push-based signal taps; see :meth:`subscribe`
        self._taps: list[Any] = []

    # -- sampling -------------------------------------------------------------

    def sample(self) -> Window:
        """Close one window at the current instant (host-side only)."""
        now = self.sim.now
        start = self._last_sample_ns if self._last_sample_ns is not None \
            else now - self.window_ns
        self._last_sample_ns = now
        values = {
            name: value
            for name, value in self.registry.snapshot().items()
            if isinstance(value, (int, float))
        }
        window = Window(self._next_index, start, now, values)
        self._next_index += 1
        self.samples += 1
        if len(self.windows) >= self.max_windows:
            self.windows.popleft()
            self.dropped_windows += 1
        self.windows.append(window)
        if self._taps:
            for tap in self._taps:
                tap(window)
        return window

    def subscribe(self, tap) -> None:
        """Register ``tap(window)`` to run after each closed window.

        This is the push-based signal feed for the control plane
        (:mod:`repro.ctrl`): a controller subscribes once and sees
        every window the moment it closes, without polling.  Taps run
        host-side inside the sampler tick; a tap that mutates
        simulation state (an *actuator*) changes the run by design —
        an inert controller must register no tap, keeping the armed
        run bit-identical to an unarmed one.
        """
        if not callable(tap):
            raise TypeError(f"tap must be callable, got {tap!r}")
        self._taps.append(tap)

    def start(self, horizon_ns: float):
        """Arm the periodic sampling timer, bounded by ``horizon_ns``.

        The bound matters for the same reason it does for the invariant
        sampler: an unbounded ticker would keep the event queue
        populated forever and break run-to-exhaustion callers.
        """
        self._last_sample_ns = self.sim.now
        return self.sim.periodic(self.window_ns, self.sample, horizon_ns,
                                 name="timeseries-sampler")

    def finish(self) -> Optional[Window]:
        """Take the trailing partial window, if any time has passed."""
        if self._last_sample_ns is not None \
                and self.sim.now <= self._last_sample_ns:
            return None
        return self.sample()

    # -- queries --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.windows)

    def names(self) -> list[str]:
        """Every metric name seen in any retained window, sorted."""
        seen: set[str] = set()
        for window in self.windows:
            seen.update(window.values)
        return sorted(seen)

    def series(self, name: str) -> list[tuple[float, float]]:
        """``(window end ns, value)`` pairs for one metric."""
        return [(w.end_ns, w.values[name]) for w in self.windows
                if name in w.values]

    def rate_series(self, name: str) -> list[tuple[float, float]]:
        """Per-window rates (per *second*) derived from a counter.

        Each retained window after the first contributes
        ``(delta value / delta time) * 1e9``.  A negative delta is a
        counter *reset* — e.g. a :class:`~repro.faults.process.\
WorkerSupervisor` crash/restart replacing the component behind a
        bound metric — not a real negative rate: the point is clamped
        to ``0.0`` and the reset is tallied per metric in
        :attr:`rate_resets`, so restart storms are visible in the
        telemetry rather than silently thinning the series.
        """
        out: list[tuple[float, float]] = []
        resets = 0
        prev: Optional[Window] = None
        for window in self.windows:
            if name in window.values:
                if prev is not None:
                    dt = window.end_ns - prev.end_ns
                    dv = window.values[name] - prev.values[name]
                    if dt > 0:
                        if dv < 0:
                            resets += 1
                            dv = 0.0
                        out.append((window.end_ns, dv / dt * _NS_PER_S))
                prev = window
        # Recomputed (not accumulated) per call, so repeated queries
        # over the same retained windows are idempotent.
        if resets:
            self.rate_resets[name] = resets
        else:
            self.rate_resets.pop(name, None)
        return out

    def overlapping(self, start_ns: float, end_ns: float) -> list[Window]:
        """Retained windows intersecting ``[start_ns, end_ns]``."""
        return [w for w in self.windows if w.overlaps(start_ns, end_ns)]

    # -- export ---------------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """JSON-able form: config, drop accounting, and every window."""
        return {
            "window_ns": self.window_ns,
            "max_windows": self.max_windows,
            "samples": self.samples,
            "dropped_windows": self.dropped_windows,
            "rate_resets": dict(self.rate_resets),
            "windows": [w.as_dict() for w in self.windows],
        }
