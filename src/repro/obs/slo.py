"""Service-level objectives over simulated time: budgets and burn rates.

The span layer answers "what happened to request N"; the time-series
layer answers "what was the system doing at instant T".  Neither
answers the operator question that drives paging policy: *is tenant X
still inside its latency objective, and if not, how fast is it burning
the error budget?*  This module adds that vocabulary on top of the
recorders that already exist — nothing here touches the simulator.

An :class:`SLOSpec` states an objective: a latency threshold and the
fraction of requests that must meet it (plus, optionally, an
availability target driven by root spans that never finish inside
``timeout_ns``).  An :class:`SLOTracker` is fed from two existing
seams, both behind the package's one-``is None`` arming convention:

* ``SpanRecorder`` calls :meth:`SLOTracker.note_root_start` /
  :meth:`SLOTracker.observe_root` when a root span opens / finishes
  (the recorder holds ``self.slo = None`` until armed);
* ``TimeSeriesSampler.subscribe`` delivers closed windows to
  :meth:`SLOTracker.on_window`, the deterministic evaluation instants
  at which burn rates are recomputed and alerts may fire.

Burn-rate alerting follows multi-window SRE practice: with budget
fraction ``1 - latency_target``, the *burn rate* over a trailing
window is ``(bad fraction in window) / budget fraction`` — burn 1.0
consumes exactly the allowed budget, burn 14 pages someone.  An alert
fires only when **both** the fast and the slow window exceed
``burn_threshold`` (fast for responsiveness, slow to suppress blips),
is latched until the fast window recovers, lands in the
:class:`~repro.obs.flight.FlightRecorder` (``slo.alert``), and is
mirrored — together with the running error-budget ledger — as a
:class:`~repro.obs.metrics.MetricsRegistry` probe so controller
policies (:mod:`repro.ctrl`) can read burn rates out of sampler
windows like any other signal.

Everything is simulated-ns; arming a tracker can never perturb a run.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["SLOSpec", "SLOAlert", "SLOTracker"]


@dataclass(frozen=True)
class SLOSpec:
    """One objective: who it covers, what "good" means, when to page.

    ``tenant``/``service`` of ``None`` match every root span; otherwise
    they are compared against the ``tenant``/``service`` fields the
    Lauberhorn demux annotates onto root spans (see
    ``SpanRecorder.tag_origin``).  ``latency_target`` is the required
    *good* fraction (0.999 = "99.9% under threshold"), so the error
    budget is ``1 - latency_target``.  ``timeout_ns``, when set, counts
    a root span that is still open after that long as an availability
    failure (bad, exactly once).  ``min_requests`` gates alerting and
    exhaustion so a two-request window cannot page.
    """

    name: str
    latency_threshold_ns: float
    latency_target: float = 0.999
    tenant: Optional[str] = None
    service: Optional[str] = None
    availability_target: Optional[float] = None
    timeout_ns: Optional[float] = None
    fast_window_ns: float = 2_000_000.0
    slow_window_ns: float = 10_000_000.0
    burn_threshold: float = 4.0
    min_requests: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.latency_target < 1.0:
            raise ValueError("latency_target must be in (0, 1)")
        if self.latency_threshold_ns <= 0:
            raise ValueError("latency_threshold_ns must be positive")
        if self.fast_window_ns > self.slow_window_ns:
            raise ValueError("fast window must not exceed slow window")
        if self.burn_threshold <= 0:
            raise ValueError("burn_threshold must be positive")

    @property
    def budget_fraction(self) -> float:
        return 1.0 - self.latency_target

    def matches(self, fields: dict) -> bool:
        if self.tenant is not None and fields.get("tenant") != self.tenant:
            return False
        if self.service is not None and fields.get("service") != self.service:
            return False
        return True

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "tenant": self.tenant,
            "service": self.service,
            "latency_threshold_ns": self.latency_threshold_ns,
            "latency_target": self.latency_target,
            "availability_target": self.availability_target,
            "timeout_ns": self.timeout_ns,
            "fast_window_ns": self.fast_window_ns,
            "slow_window_ns": self.slow_window_ns,
            "burn_threshold": self.burn_threshold,
            "min_requests": self.min_requests,
        }


@dataclass
class SLOAlert:
    """One burn-rate page: when, for whom, how hot both windows ran."""

    t_ns: float
    spec: str
    tenant: Optional[str]
    burn_fast: float
    burn_slow: float
    fast_total: int

    def as_dict(self) -> dict:
        return {
            "t_ns": self.t_ns,
            "spec": self.spec,
            "tenant": self.tenant,
            "burn_fast": self.burn_fast,
            "burn_slow": self.burn_slow,
            "fast_total": self.fast_total,
        }


@dataclass
class _Ledger:
    """Running error-budget state for one spec (host-side only)."""

    total: int = 0
    bad: int = 0
    timeouts: int = 0
    completed: int = 0
    burn_fast: float = 0.0
    burn_slow: float = 0.0
    alerting: bool = False
    alerts: int = 0
    first_alert_ns: Optional[float] = None
    exhausted_ns: Optional[float] = None
    # (end_ns, bad) per SLI event, pruned past the slow window
    events: deque = field(default_factory=deque)


class SLOTracker:
    """Error-budget ledgers + multi-window burn-rate alerts per spec.

    Feed it root spans (via ``SpanRecorder``) and closed sampler
    windows (via :meth:`on_window`); read it through
    :meth:`snapshot` (metrics probe rows), :attr:`alerts`, or the
    JSON-able :meth:`report`.
    """

    def __init__(self, sim, specs, flight=None):
        if not specs:
            raise ValueError("SLOTracker needs at least one SLOSpec")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLOSpec names: {names}")
        self.sim = sim
        self.specs: tuple[SLOSpec, ...] = tuple(specs)
        self.flight = flight
        self.alerts: list[SLOAlert] = []
        self._ledgers: dict[str, _Ledger] = {
            spec.name: _Ledger() for spec in self.specs}
        # open root spans awaiting completion (for timeout objectives)
        self._open: dict[int, Any] = {}
        # trace ids already charged as timeouts — a late completion
        # must not count the same request twice
        self._timed_out: set[int] = set()
        self._evaluations = 0

    # -- arming ---------------------------------------------------------------

    def arm(self, recorder=None, sampler=None, registry=None,
            prefix: str = "slo") -> "SLOTracker":
        """Wire the tracker into the recorders it feeds from.

        Sets ``recorder.slo``, subscribes :meth:`on_window` to the
        sampler, and registers :meth:`snapshot` as a registry probe
        under ``prefix`` — each optional, so tests can arm one seam at
        a time.  Returns ``self`` for chaining.
        """
        if recorder is not None:
            recorder.slo = self
        if sampler is not None:
            sampler.subscribe(self.on_window)
        if registry is not None:
            registry.probe(prefix, self.snapshot)
        return self

    # -- span feed ------------------------------------------------------------

    def note_root_start(self, span) -> None:
        """A root span opened; remember it for timeout accounting."""
        self._open[span.span_id] = span

    def observe_root(self, span) -> None:
        """A root span finished: classify it against every matching spec."""
        self._open.pop(span.span_id, None)
        if span.span_id in self._timed_out:
            # already charged as an availability failure at evaluation
            # time; do not double-count the same request
            self._timed_out.discard(span.span_id)
            return
        end_ns = span.end_ns
        duration = end_ns - span.start_ns
        fields = span.fields
        for spec in self.specs:
            if not spec.matches(fields):
                continue
            ledger = self._ledgers[spec.name]
            bad = duration > spec.latency_threshold_ns
            ledger.total += 1
            ledger.completed += 1
            if bad:
                ledger.bad += 1
            ledger.events.append((end_ns, bad))

    # -- evaluation -----------------------------------------------------------

    def on_window(self, window) -> None:
        """Sampler tap: evaluate every spec at this window's close."""
        self.evaluate(window.end_ns)

    def evaluate(self, now_ns: float) -> None:
        self._evaluations += 1
        self._charge_timeouts(now_ns)
        for spec in self.specs:
            ledger = self._ledgers[spec.name]
            burn_fast, fast_total = self._window_burn(
                spec, ledger, now_ns, spec.fast_window_ns)
            burn_slow, _ = self._window_burn(
                spec, ledger, now_ns, spec.slow_window_ns)
            ledger.burn_fast = burn_fast
            ledger.burn_slow = burn_slow
            self._update_exhaustion(spec, ledger, now_ns)
            breaching = (
                fast_total >= spec.min_requests
                and burn_fast >= spec.burn_threshold
                and burn_slow >= spec.burn_threshold)
            if breaching and not ledger.alerting:
                ledger.alerting = True
                ledger.alerts += 1
                if ledger.first_alert_ns is None:
                    ledger.first_alert_ns = now_ns
                alert = SLOAlert(now_ns, spec.name, spec.tenant,
                                 burn_fast, burn_slow, fast_total)
                self.alerts.append(alert)
                if self.flight is not None:
                    self.flight.note("slo.alert", spec=spec.name,
                                     tenant=spec.tenant or "*",
                                     burn_fast=burn_fast,
                                     burn_slow=burn_slow)
            elif not breaching and burn_fast < spec.burn_threshold:
                # latched until the fast window recovers
                ledger.alerting = False
            # prune events past the slow window
            horizon = now_ns - spec.slow_window_ns
            events = ledger.events
            while events and events[0][0] <= horizon:
                events.popleft()

    def _charge_timeouts(self, now_ns: float) -> None:
        """Open roots past their timeout count as bad, exactly once."""
        expired = []
        for span_id, span in self._open.items():
            age = now_ns - span.start_ns
            charged = False
            for spec in self.specs:
                if spec.timeout_ns is None or age <= spec.timeout_ns:
                    continue
                if not spec.matches(span.fields):
                    continue
                ledger = self._ledgers[spec.name]
                ledger.total += 1
                ledger.bad += 1
                ledger.timeouts += 1
                ledger.events.append((now_ns, True))
                charged = True
            if charged:
                expired.append(span_id)
        for span_id in expired:
            del self._open[span_id]
            self._timed_out.add(span_id)

    @staticmethod
    def _window_burn(spec: SLOSpec, ledger: _Ledger, now_ns: float,
                     window_ns: float) -> tuple[float, int]:
        horizon = now_ns - window_ns
        total = bad = 0
        for end_ns, is_bad in reversed(ledger.events):
            if end_ns <= horizon:
                break
            total += 1
            if is_bad:
                bad += 1
        if total == 0:
            return 0.0, 0
        return (bad / total) / spec.budget_fraction, total

    def _update_exhaustion(self, spec: SLOSpec, ledger: _Ledger,
                           now_ns: float) -> None:
        if ledger.exhausted_ns is not None:
            return
        if ledger.total < spec.min_requests:
            return
        if ledger.bad > spec.budget_fraction * ledger.total:
            ledger.exhausted_ns = now_ns
            if self.flight is not None:
                self.flight.note("slo.exhausted", spec=spec.name,
                                 tenant=spec.tenant or "*",
                                 bad=ledger.bad, total=ledger.total)

    # -- views ----------------------------------------------------------------

    def budget_consumed(self, spec_name: str) -> float:
        """Fraction of the error budget burned so far (1.0 = exhausted)."""
        spec = self._spec(spec_name)
        ledger = self._ledgers[spec_name]
        if ledger.total == 0:
            return 0.0
        return (ledger.bad / ledger.total) / spec.budget_fraction

    def availability(self, spec_name: str) -> float:
        ledger = self._ledgers[spec_name]
        if ledger.total == 0:
            return 1.0
        return ledger.completed / ledger.total

    def _spec(self, name: str) -> SLOSpec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise KeyError(name)

    def snapshot(self) -> dict[str, float]:
        """Flat probe rows: ``{spec}.{stat}`` per objective.

        Registered under a registry prefix (default ``"slo"``), these
        land in every sampler window, which is how the ``slo_guard``
        controller policy reads burn rates as live signals.
        """
        out: dict[str, float] = {}
        for spec in self.specs:
            ledger = self._ledgers[spec.name]
            key = spec.name
            out[f"{key}.total"] = float(ledger.total)
            out[f"{key}.bad"] = float(ledger.bad)
            out[f"{key}.timeouts"] = float(ledger.timeouts)
            out[f"{key}.burn_fast"] = ledger.burn_fast
            out[f"{key}.burn_slow"] = ledger.burn_slow
            out[f"{key}.budget_consumed"] = self.budget_consumed(spec.name)
            out[f"{key}.alerts"] = float(ledger.alerts)
            out[f"{key}.alerting"] = 1.0 if ledger.alerting else 0.0
            out[f"{key}.exhausted"] = (
                0.0 if ledger.exhausted_ns is None else 1.0)
        return out

    def report(self) -> dict[str, Any]:
        """JSON-able per-spec ledger + alert history for artifacts."""
        specs = {}
        for spec in self.specs:
            ledger = self._ledgers[spec.name]
            exhausted_ns = ledger.exhausted_ns
            first_alert_ns = ledger.first_alert_ns
            lead_ns = None
            if exhausted_ns is not None and first_alert_ns is not None:
                lead_ns = exhausted_ns - first_alert_ns
            specs[spec.name] = {
                "spec": spec.as_dict(),
                "total": ledger.total,
                "bad": ledger.bad,
                "timeouts": ledger.timeouts,
                "availability": self.availability(spec.name),
                "budget_consumed": self.budget_consumed(spec.name),
                "burn_fast": ledger.burn_fast,
                "burn_slow": ledger.burn_slow,
                "alerts": ledger.alerts,
                "first_alert_ns": first_alert_ns,
                "exhausted_ns": exhausted_ns,
                "alert_lead_ns": lead_ns,
                "violated": exhausted_ns is not None,
            }
        return {
            "evaluations": self._evaluations,
            "open_roots": len(self._open),
            "n_alerts": len(self.alerts),
            "alerts": [alert.as_dict() for alert in self.alerts],
            "specs": specs,
        }


def _self_test() -> None:  # pragma: no cover - import-time sanity
    assert math.isclose(
        SLOSpec("s", 1000.0, latency_target=0.99).budget_fraction, 0.01)


_self_test()
