"""Request-scoped observability: spans, metrics, exporters.

Section 6 of the paper argues the NIC-as-OS design can emit a complete
per-RPC timeline because the NIC sees every stage of a request's life.
This package generalises that story to *all* the reproduction's stacks:

* :mod:`repro.obs.spans` — a Dapper-style span layer on top of
  :class:`repro.sim.trace.Tracer`: every request gets a trace id at the
  client, and each layer it crosses (client → wire → NIC rx →
  dispatch/softirq → handler → egress → wire) records child spans with
  parent links, so one RPC yields a real tree.
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  (counters/gauges/histograms with a single ``snapshot()`` dict) that
  absorbs the ad-hoc stats scattered across ``hw/``, ``os/``,
  ``net/link.py``, and the NIC models.
* :mod:`repro.obs.export` — Chrome-trace/Perfetto JSON (loadable at
  ``ui.perfetto.dev``) plus text flame/critical-path summaries.
* :mod:`repro.obs.timeseries` — a Monarch-style windowed sampler: a
  sim-timer reads the registry snapshot every W ns into a bounded ring
  of fixed-width windows (exact ``dropped_windows`` accounting), with
  derived per-window rates for counters.
* :mod:`repro.obs.flight` — a bounded flight recorder of recent
  annotated events (span opens/closes, fault injections, scheduler
  decisions, Tryagain bounces) that the invariant checker dumps to
  JSON the moment a violation is recorded.
* :mod:`repro.obs.tail` — tail forensics: joins p99/p99.9 span trees
  with the time-series windows they overlap, attributing each slow
  request to the concurrent system state — grouped by (host, tenant)
  when the Lauberhorn demux tags span origins.
* :mod:`repro.obs.slo` — per-tenant/per-service SLOs in simulated
  time: error-budget ledgers and multi-window burn-rate alerts fed
  from root-span completions and sampler windows.
* :mod:`repro.obs.flame` — exact simulated-ns flamegraph folding of
  span trees (collapsed-stack + speedscope exporters) and a host-CPU
  slice profiler over the engine run loop.
* :mod:`repro.obs.instrument` — one-call arming of a
  :class:`~repro.experiments.testbed.Testbed`.

Spans do Python-level bookkeeping only — they never advance simulated
time — so an armed run produces bit-identical simulation results to an
unarmed one (experiment E20 checks exactly this), and the disabled
path is a single ``is None`` test per hook.
"""

from .export import (
    chrome_trace_events,
    export_chrome_trace,
    render_critical_path,
    render_stage_summary,
    validate_chrome_trace,
)
from .flame import (
    FlameProfile,
    HostCpuProfiler,
    diff_stacks,
    fold_spans,
    render_collapsed,
    speedscope_json,
    validate_speedscope,
)
from .flight import FlightRecorder
from .instrument import arm_flight, arm_testbed, bind_testbed_metrics
from .metrics import REGISTRY, Counter, Gauge, MetricsCollision, MetricsRegistry
from .slo import SLOAlert, SLOSpec, SLOTracker
from .spans import Span, SpanRecorder, public_meta
from .tail import (
    render_tail_report,
    slow_roots,
    slow_roots_by_group,
    tail_report,
)
from .timeseries import TimeSeriesSampler, Window

__all__ = [
    "Span",
    "SpanRecorder",
    "public_meta",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "MetricsCollision",
    "REGISTRY",
    "TimeSeriesSampler",
    "Window",
    "FlightRecorder",
    "SLOSpec",
    "SLOAlert",
    "SLOTracker",
    "FlameProfile",
    "HostCpuProfiler",
    "fold_spans",
    "diff_stacks",
    "render_collapsed",
    "speedscope_json",
    "validate_speedscope",
    "slow_roots",
    "slow_roots_by_group",
    "tail_report",
    "render_tail_report",
    "chrome_trace_events",
    "export_chrome_trace",
    "validate_chrome_trace",
    "render_stage_summary",
    "render_critical_path",
    "arm_testbed",
    "arm_flight",
    "bind_testbed_metrics",
]
