"""Request-scoped observability: spans, metrics, exporters.

Section 6 of the paper argues the NIC-as-OS design can emit a complete
per-RPC timeline because the NIC sees every stage of a request's life.
This package generalises that story to *all* the reproduction's stacks:

* :mod:`repro.obs.spans` — a Dapper-style span layer on top of
  :class:`repro.sim.trace.Tracer`: every request gets a trace id at the
  client, and each layer it crosses (client → wire → NIC rx →
  dispatch/softirq → handler → egress → wire) records child spans with
  parent links, so one RPC yields a real tree.
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  (counters/gauges/histograms with a single ``snapshot()`` dict) that
  absorbs the ad-hoc stats scattered across ``hw/``, ``os/``,
  ``net/link.py``, and the NIC models.
* :mod:`repro.obs.export` — Chrome-trace/Perfetto JSON (loadable at
  ``ui.perfetto.dev``) plus text flame/critical-path summaries.
* :mod:`repro.obs.timeseries` — a Monarch-style windowed sampler: a
  sim-timer reads the registry snapshot every W ns into a bounded ring
  of fixed-width windows (exact ``dropped_windows`` accounting), with
  derived per-window rates for counters.
* :mod:`repro.obs.flight` — a bounded flight recorder of recent
  annotated events (span opens/closes, fault injections, scheduler
  decisions, Tryagain bounces) that the invariant checker dumps to
  JSON the moment a violation is recorded.
* :mod:`repro.obs.tail` — tail forensics: joins p99/p99.9 span trees
  with the time-series windows they overlap, attributing each slow
  request to the concurrent system state.
* :mod:`repro.obs.instrument` — one-call arming of a
  :class:`~repro.experiments.testbed.Testbed`.

Spans do Python-level bookkeeping only — they never advance simulated
time — so an armed run produces bit-identical simulation results to an
unarmed one (experiment E20 checks exactly this), and the disabled
path is a single ``is None`` test per hook.
"""

from .export import (
    chrome_trace_events,
    export_chrome_trace,
    render_critical_path,
    render_stage_summary,
    validate_chrome_trace,
)
from .flight import FlightRecorder
from .instrument import arm_flight, arm_testbed, bind_testbed_metrics
from .metrics import REGISTRY, Counter, Gauge, MetricsCollision, MetricsRegistry
from .spans import Span, SpanRecorder, public_meta
from .tail import render_tail_report, slow_roots, tail_report
from .timeseries import TimeSeriesSampler, Window

__all__ = [
    "Span",
    "SpanRecorder",
    "public_meta",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "MetricsCollision",
    "REGISTRY",
    "TimeSeriesSampler",
    "Window",
    "FlightRecorder",
    "slow_roots",
    "tail_report",
    "render_tail_report",
    "chrome_trace_events",
    "export_chrome_trace",
    "validate_chrome_trace",
    "render_stage_summary",
    "render_critical_path",
    "arm_testbed",
    "arm_flight",
    "bind_testbed_metrics",
]
