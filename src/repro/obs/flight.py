"""A flight recorder: the last N annotated events, for post-mortems.

Spans tell you where a request went; time series tell you what the
system looked like over time.  What neither gives you is **what just
happened** when something goes wrong — the black-box recording a crash
investigator reads back.  A :class:`FlightRecorder` is a bounded ring
of recent annotated events:

* span opens/closes (fed by :class:`~repro.obs.spans.SpanRecorder`
  when its ``flight`` attribute is set);
* fault injections (wire loss/corruption/reorder/duplication, RX ring
  stalls — fed by :mod:`repro.faults.inject`);
* scheduler dispatch decisions (fed by :class:`repro.os.kernel.Kernel`);
* Lauberhorn Tryagain bounces (fed by the NIC).

Every feed is guarded by an ``is None`` test at the call site, so an
unarmed run pays one attribute check per would-be event — the same
zero-cost-when-disabled contract spans honour.  Recording is pure
host-side bookkeeping (an append to a deque); arming a flight recorder
never perturbs simulated time.

The ring is the point: a recorder with ``capacity=512`` holds the 512
*most recent* events no matter how long the run, with an exact
:attr:`dropped` count, so the dump :class:`repro.check.CheckRegistry`
takes on an invariant violation shows the moments *before* the
violation, not the beginning of time.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Optional

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Ring-bounded recent-event log over one simulator."""

    def __init__(self, sim, capacity: int = 512):
        if capacity < 1:
            raise ValueError(f"need a positive capacity, got {capacity}")
        self.sim = sim
        self.capacity = int(capacity)
        self.events: deque[tuple[float, str, dict]] = deque()
        #: events evicted from the ring (exact)
        self.dropped = 0
        #: events ever recorded (== len(events) + dropped)
        self.recorded = 0

    # -- recording ------------------------------------------------------------

    def note(self, kind: str, **fields: Any) -> None:
        """Append one annotated event at the current sim time."""
        self.recorded += 1
        events = self.events
        if len(events) >= self.capacity:
            events.popleft()
            self.dropped += 1
        events.append((self.sim.now, kind, fields))

    # -- queries --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def snapshot(self) -> list[dict]:
        """Retained events as JSON-able dicts, oldest first."""
        return [
            {"time_ns": time_ns, "kind": kind, "fields": dict(fields)}
            for time_ns, kind, fields in self.events
        ]

    def events_between(self, start_ns: float, end_ns: float) -> list[dict]:
        """Retained events with ``start_ns <= time <= end_ns``."""
        return [
            {"time_ns": time_ns, "kind": kind, "fields": dict(fields)}
            for time_ns, kind, fields in self.events
            if start_ns <= time_ns <= end_ns
        ]

    def kinds(self) -> dict[str, int]:
        """``{event kind: retained count}`` — the dump's table of contents."""
        counts: dict[str, int] = {}
        for _, kind, _ in self.events:
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    # -- dumping --------------------------------------------------------------

    def dump(self, reason: Optional[dict] = None) -> dict:
        """The full post-mortem payload (JSON-able)."""
        return {
            "time_ns": self.sim.now,
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "kinds": self.kinds(),
            "reason": reason,
            "events": self.snapshot(),
        }

    def dump_json(self, path: str, reason: Optional[dict] = None) -> dict:
        """Write :meth:`dump` to ``path``; returns the payload."""
        payload = self.dump(reason=reason)
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=1)
        return payload
