"""Span exporters: Perfetto/Chrome-trace JSON and text summaries.

The JSON exporter emits the Chrome trace-event format (the ``"X"``
complete-event flavour), which ``ui.perfetto.dev`` and
``chrome://tracing`` both load directly: one *process* row per stack,
one *thread* row per trace (request), one slice per span.  Timestamps
are microseconds in that format; simulated nanoseconds are divided by
1000 and keep their fraction, so nothing is rounded away.

:func:`validate_chrome_trace` checks the payload against the schema's
invariants so CI can prove an exported artifact actually loads.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Optional

from .spans import Span

__all__ = [
    "chrome_trace_events",
    "export_chrome_trace",
    "validate_chrome_trace",
    "stage_attribution",
    "render_stage_summary",
    "render_critical_path",
]


def _span_iter(spans: Iterable) -> Iterable[Span]:
    for span in spans:
        if isinstance(span, dict):
            span = Span(
                trace_id=span["trace_id"], span_id=span["span_id"],
                parent_id=span.get("parent_id"), name=span["name"],
                layer=span["layer"], start_ns=span["start_ns"],
                end_ns=span.get("end_ns"), fields=span.get("fields"),
            )
        yield span


def chrome_trace_events(spans: Iterable, pid: int = 1,
                        process_name: str = "repro") -> list[dict]:
    """Spans (objects or ``Span.as_dict()`` dicts) as trace events."""
    events: list[dict] = [{
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
        "args": {"name": process_name},
    }]
    threads_named: set[int] = set()
    for span in _span_iter(spans):
        if not span.finished:
            continue
        tid = span.trace_id
        if tid not in threads_named:
            threads_named.add(tid)
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": f"trace {tid}"},
            })
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.layer,
            "pid": pid,
            "tid": tid,
            "ts": span.start_ns / 1000.0,
            "dur": span.duration_ns / 1000.0,
            "args": {
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                **span.fields,
            },
        })
    return events


def export_chrome_trace(path: str, spans_by_process: dict) -> dict:
    """Write ``{label: spans}`` groups as one Perfetto-loadable file.

    Each label (e.g. a stack name) becomes its own process row.
    Returns the payload that was written.
    """
    events: list[dict] = []
    for pid, (label, spans) in enumerate(spans_by_process.items(), start=1):
        events.extend(chrome_trace_events(spans, pid=pid, process_name=label))
    payload = {"traceEvents": events, "displayTimeUnit": "ns"}
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)
    return payload


def validate_chrome_trace(payload: Any) -> list[str]:
    """Chrome trace-event schema violations; empty list means valid."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload is {type(payload).__name__}, not an object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]
    if not events:
        problems.append("traceEvents is empty")
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "M"):
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: {key} must be an integer")
        if phase == "M":
            args = event.get("args")
            if not isinstance(args, dict) or "name" not in args:
                problems.append(f"{where}: metadata event needs args.name")
            continue
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, (int, float)):
                problems.append(f"{where}: {key} must be a number")
            elif value < 0:
                problems.append(f"{where}: {key} is negative ({value})")
        if not isinstance(event.get("cat"), str):
            problems.append(f"{where}: cat must be a string")
    return problems


# -- text summaries -----------------------------------------------------------


def stage_attribution(spans: Iterable) -> dict[str, tuple[int, float]]:
    """``{span name: (count, mean duration ns)}`` over finished spans."""
    totals: dict[str, list[float]] = {}
    for span in _span_iter(spans):
        if span.finished:
            totals.setdefault(span.name, []).append(span.duration_ns)
    return {
        name: (len(values), sum(values) / len(values))
        for name, values in totals.items()
    }


def render_stage_summary(spans: Iterable, title: str = "spans") -> str:
    """A flame-style text summary: per-stage counts, means, shares."""
    spans = list(_span_iter(spans))
    attribution = stage_attribution(spans)
    if not attribution:
        return f"{title}: no finished spans"
    grand_total = sum(count * mean for count, mean in attribution.values())
    lines = [f"{title} — stage attribution",
             f"{'stage':<14} {'count':>6} {'mean ns':>12} {'share':>7}"]
    ranked = sorted(attribution.items(),
                    key=lambda item: item[1][0] * item[1][1], reverse=True)
    for name, (count, mean) in ranked:
        share = 100.0 * count * mean / grand_total if grand_total else 0.0
        lines.append(f"{name:<14} {count:>6} {mean:>12.1f} {share:>6.1f}%")
    return "\n".join(lines)


def render_critical_path(spans: Iterable,
                         trace_id: Optional[int] = None) -> str:
    """One trace's spans in start order, with inter-stage gaps."""
    chosen = [s for s in _span_iter(spans) if s.finished]
    if trace_id is None and chosen:
        trace_id = chosen[0].trace_id
    chosen = sorted((s for s in chosen if s.trace_id == trace_id),
                    key=lambda s: (s.start_ns, s.span_id))
    if not chosen:
        return f"trace {trace_id}: no finished spans"
    root = next((s for s in chosen if s.parent_id is None), chosen[0])
    lines = [f"trace {trace_id} — critical path "
             f"({root.name}: {root.duration_ns:.0f} ns)"]
    previous_end = None
    for span in chosen:
        if span is root:
            continue
        if previous_end is not None and span.start_ns > previous_end:
            lines.append(f"  {'(gap)':<14} {span.start_ns - previous_end:>10.1f} ns")
        lines.append(f"  {span.name:<14} {span.duration_ns:>10.1f} ns "
                     f"@ {span.start_ns:.0f}")
        previous_end = span.end_ns
    return "\n".join(lines)
