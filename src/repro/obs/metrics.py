"""A process-wide metrics registry: counters, gauges, histograms.

Before this module, every component kept its own ad-hoc stats object —
``NicStats``, ``KernelStats``, ``LinkStats``, ``SocketStats``,
``LauberhornStats``, per-core ``CoreCounters`` — and every experiment
that wanted a number had to know which object to reach into.  A
:class:`MetricsRegistry` gives them one namespace and one
``snapshot()`` call:

* :meth:`MetricsRegistry.counter` / :meth:`gauge` /
  :meth:`histogram` create owned instruments for new code;
* :meth:`bind` registers an *existing* stats dataclass as a live
  probe — its numeric fields are read at snapshot time, so the
  component keeps mutating its own object with zero added cost on the
  data path (the registry only pays at ``snapshot()``).

Components expose a ``bind_metrics(registry, prefix)`` hook;
:func:`repro.obs.instrument.bind_testbed_metrics` calls them all for
an assembled testbed.
"""

from __future__ import annotations

import dataclasses
import weakref
from typing import Any, Callable, Optional

from ..metrics.histogram import LatencyRecorder

__all__ = ["Counter", "Gauge", "MetricsCollision", "MetricsRegistry",
           "REGISTRY"]


class MetricsCollision(ValueError):
    """Two instruments produced the same snapshot key (strict mode)."""


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value: either set directly or computed by ``fn``."""

    __slots__ = ("name", "fn", "_value")

    def __init__(self, name: str, fn: Optional[Callable[[], Any]] = None):
        self.name = name
        self.fn = fn
        self._value = 0

    def set(self, value) -> None:
        self._value = value

    @property
    def value(self):
        return self.fn() if self.fn is not None else self._value


def _numeric_fields(obj) -> dict[str, Any]:
    """The int/float attributes of a stats object (dataclass or not)."""
    if dataclasses.is_dataclass(obj):
        pairs = ((f.name, getattr(obj, f.name))
                 for f in dataclasses.fields(obj))
    else:
        try:
            pairs = vars(obj).items()
        except TypeError:
            # __slots__ types have no __dict__; walk the slot names
            # declared anywhere in the MRO instead.
            pairs = ((name, getattr(obj, name))
                     for klass in type(obj).__mro__
                     for name in getattr(klass, "__slots__", ())
                     if hasattr(obj, name))
    return {name: value for name, value in pairs
            if isinstance(value, (int, float)) and not name.startswith("_")}


class MetricsRegistry:
    """One flat namespace over every component's instruments."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, LatencyRecorder] = {}
        self._probes: list[tuple[str, Callable[[], dict]]] = []
        #: key collisions detected by the most recent :meth:`snapshot`
        self.collisions = 0

    # -- instrument factories (memoised by name) ------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str,
              fn: Optional[Callable[[], Any]] = None) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name, fn)
        elif fn is not None:
            gauge.fn = fn
        return gauge

    def histogram(self, name: str) -> LatencyRecorder:
        recorder = self._histograms.get(name)
        if recorder is None:
            recorder = self._histograms[name] = LatencyRecorder(name)
        return recorder

    # -- live probes over existing stats objects ------------------------------

    def probe(self, prefix: str, fn: Callable[[], dict]) -> None:
        """Register ``fn() -> {name: value}``, read at snapshot time."""
        self._probes.append((prefix, fn))

    def bind(self, prefix: str, obj) -> None:
        """Expose a stats object's numeric fields as live gauges.

        The probe holds only a *weak* reference to ``obj`` (when the
        type allows one): a registry must never be what keeps a whole
        testbed alive — long-lived registries over short-lived runs
        were exactly the leak that pinned testbeds across
        ``repro.exp`` pool jobs.  Once the stats object is collected
        the probe contributes nothing.
        """
        try:
            ref = weakref.ref(obj)
        except TypeError:
            # Not weak-referenceable (slots without __weakref__):
            # fall back to a strong reference.
            self.probe(prefix, lambda obj=obj: _numeric_fields(obj))
            return

        def read(ref=ref) -> dict:
            target = ref()
            return _numeric_fields(target) if target is not None else {}

        self.probe(prefix, read)

    # -- lifecycle ------------------------------------------------------------

    def reset(self) -> None:
        """Drop every instrument and probe (cross-run hygiene).

        Experiments should prefer a fresh per-run registry; ``reset``
        exists for the process-wide :data:`REGISTRY` and long-lived
        harnesses, so ad-hoc bindings from one run cannot leak stats
        objects — or stale numbers — into the next.
        """
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._probes.clear()
        self.collisions = 0

    # -- the one call everything funnels into ---------------------------------

    def snapshot(self, strict: bool = False) -> dict[str, Any]:
        """Flat ``{"prefix.name": value}`` view of every instrument.

        Histograms contribute their summary row (or nothing while
        empty, via :meth:`LatencyRecorder.summary_or_none`).

        The namespace is flat, so a ``probe()``/``bind()`` prefix can
        produce a key that an owned instrument (or another probe)
        already claimed.  Collisions are detected here, at snapshot
        time: the **last writer wins**, deterministically — sources
        contribute in the fixed order counters, gauges, histogram
        rows, then probes in registration order — the collision count
        lands in :attr:`collisions` and, when non-zero, in the
        snapshot itself under ``"metrics.collisions"``.  Check
        harnesses pass ``strict=True`` to raise
        :class:`MetricsCollision` instead of silently overwriting.
        """
        out: dict[str, Any] = {}
        collided: list[str] = []

        def put(key: str, value: Any) -> None:
            if key in out:
                collided.append(key)
            out[key] = value

        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            put(name, gauge.value)
        for name, recorder in self._histograms.items():
            summary = recorder.summary_or_none()
            if summary is not None:
                for stat, value in summary.row().items():
                    put(f"{name}.{stat}", value)
        for prefix, fn in self._probes:
            for name, value in fn().items():
                put(f"{prefix}.{name}", value)
        self.collisions = len(collided)
        if collided:
            if strict:
                raise MetricsCollision(
                    f"{len(collided)} snapshot key collision(s): "
                    + ", ".join(sorted(set(collided))))
            out["metrics.collisions"] = len(collided)
        return out


#: Process-wide default registry, reserved for *ad-hoc* use (REPL
#: poking, one-off scripts).  Experiments and tests must build per-run
#: registries (``bind_testbed_metrics(bed)`` does) so one run's
#: bindings cannot leak into — or pin testbeds across — the next;
#: call :meth:`MetricsRegistry.reset` to scrub this one.
REGISTRY = MetricsRegistry()
