"""A process-wide metrics registry: counters, gauges, histograms.

Before this module, every component kept its own ad-hoc stats object —
``NicStats``, ``KernelStats``, ``LinkStats``, ``SocketStats``,
``LauberhornStats``, per-core ``CoreCounters`` — and every experiment
that wanted a number had to know which object to reach into.  A
:class:`MetricsRegistry` gives them one namespace and one
``snapshot()`` call:

* :meth:`MetricsRegistry.counter` / :meth:`gauge` /
  :meth:`histogram` create owned instruments for new code;
* :meth:`bind` registers an *existing* stats dataclass as a live
  probe — its numeric fields are read at snapshot time, so the
  component keeps mutating its own object with zero added cost on the
  data path (the registry only pays at ``snapshot()``).

Components expose a ``bind_metrics(registry, prefix)`` hook;
:func:`repro.obs.instrument.bind_testbed_metrics` calls them all for
an assembled testbed.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Optional

from ..metrics.histogram import LatencyRecorder

__all__ = ["Counter", "Gauge", "MetricsRegistry", "REGISTRY"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value: either set directly or computed by ``fn``."""

    __slots__ = ("name", "fn", "_value")

    def __init__(self, name: str, fn: Optional[Callable[[], Any]] = None):
        self.name = name
        self.fn = fn
        self._value = 0

    def set(self, value) -> None:
        self._value = value

    @property
    def value(self):
        return self.fn() if self.fn is not None else self._value


def _numeric_fields(obj) -> dict[str, Any]:
    """The int/float attributes of a stats object (dataclass or not)."""
    if dataclasses.is_dataclass(obj):
        pairs = ((f.name, getattr(obj, f.name))
                 for f in dataclasses.fields(obj))
    else:
        pairs = vars(obj).items()
    return {name: value for name, value in pairs
            if isinstance(value, (int, float)) and not name.startswith("_")}


class MetricsRegistry:
    """One flat namespace over every component's instruments."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, LatencyRecorder] = {}
        self._probes: list[tuple[str, Callable[[], dict]]] = []

    # -- instrument factories (memoised by name) ------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str,
              fn: Optional[Callable[[], Any]] = None) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name, fn)
        elif fn is not None:
            gauge.fn = fn
        return gauge

    def histogram(self, name: str) -> LatencyRecorder:
        recorder = self._histograms.get(name)
        if recorder is None:
            recorder = self._histograms[name] = LatencyRecorder(name)
        return recorder

    # -- live probes over existing stats objects ------------------------------

    def probe(self, prefix: str, fn: Callable[[], dict]) -> None:
        """Register ``fn() -> {name: value}``, read at snapshot time."""
        self._probes.append((prefix, fn))

    def bind(self, prefix: str, obj) -> None:
        """Expose a stats object's numeric fields as live gauges."""
        self.probe(prefix, lambda obj=obj: _numeric_fields(obj))

    # -- the one call everything funnels into ---------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Flat ``{"prefix.name": value}`` view of every instrument.

        Histograms contribute their summary row (or nothing while
        empty, via :meth:`LatencyRecorder.summary_or_none`).
        """
        out: dict[str, Any] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, recorder in self._histograms.items():
            summary = recorder.summary_or_none()
            if summary is not None:
                for stat, value in summary.row().items():
                    out[f"{name}.{stat}"] = value
        for prefix, fn in self._probes:
            for name, value in fn().items():
                out[f"{prefix}.{name}"] = value
        return out


#: Process-wide default registry for code without an explicit one.
REGISTRY = MetricsRegistry()
