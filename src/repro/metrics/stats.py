"""Small-sample statistics for multi-seed experiment runs.

Simulation results are deterministic per seed; across seeds they are
i.i.d. samples.  These helpers give experiments honest error bars
without external dependencies: Student-t confidence intervals for
means, and a seeded bootstrap for arbitrary statistics (e.g. p99).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = ["mean", "stddev", "MeanCI", "t_confidence_interval", "bootstrap_ci"]

# Two-sided 95% Student-t critical values by degrees of freedom (1..30);
# beyond 30 the normal approximation (1.96) is close enough.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
    13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
    19: 2.093, 20: 2.086, 21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064,
    25: 2.060, 26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}


def mean(samples: Sequence[float]) -> float:
    if not samples:
        raise ValueError("no samples")
    return sum(samples) / len(samples)


def stddev(samples: Sequence[float]) -> float:
    """Sample (n-1) standard deviation."""
    if len(samples) < 2:
        raise ValueError("need at least two samples")
    centre = mean(samples)
    return math.sqrt(
        sum((x - centre) ** 2 for x in samples) / (len(samples) - 1)
    )


@dataclass(frozen=True)
class MeanCI:
    """A mean with a symmetric confidence interval."""

    mean: float
    half_width: float
    confidence: float = 0.95

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def overlaps(self, other: "MeanCI") -> bool:
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g}"


def t_confidence_interval(samples: Sequence[float]) -> MeanCI:
    """95% Student-t CI on the mean."""
    if len(samples) < 2:
        raise ValueError("need at least two samples for an interval")
    dof = len(samples) - 1
    critical = _T95.get(dof, 1.96)
    half = critical * stddev(samples) / math.sqrt(len(samples))
    return MeanCI(mean=mean(samples), half_width=half)


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[Sequence[float]], float],
    n_resamples: int = 2000,
    seed: int = 0,
    confidence: float = 0.95,
) -> tuple[float, float, float]:
    """Percentile bootstrap: returns (point, low, high) for
    ``statistic`` over ``samples``."""
    if not samples:
        raise ValueError("no samples")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    rng = random.Random(seed)
    point = statistic(samples)
    estimates = sorted(
        statistic([rng.choice(samples) for _ in range(len(samples))])
        for _ in range(n_resamples)
    )
    alpha = (1 - confidence) / 2
    # Symmetric tails: floor the lower index, use a ceil-based upper
    # index so both sides exclude the same number of resamples.  A
    # floored upper index (int((1 - alpha) * n)) drops one fewer
    # estimate from the top tail than the bottom, biasing the interval.
    low = estimates[int(alpha * n_resamples)]
    high = estimates[min(n_resamples - 1,
                         math.ceil((1 - alpha) * n_resamples) - 1)]
    return point, low, high
