"""Per-request CPU-cost measurement windows.

E2/E3/E4 report "software cycles per RPC": snapshot all core counters,
run load, snapshot again, divide by completed requests.  The
:class:`CycleWindow` helper packages that.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.machine import Machine

__all__ = ["CycleWindow", "PerRequestCost"]


@dataclass(frozen=True)
class PerRequestCost:
    """Aggregate per-request CPU cost over a window."""

    requests: int
    busy_ns_per_request: float
    instructions_per_request: float
    stall_ns_per_request: float

    def cycles_per_request(self, ghz: float) -> float:
        return self.busy_ns_per_request * ghz


class CycleWindow:
    """Brackets a measurement interval over a machine's cores."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self._snapshots = None
        self._start_ns = None

    def begin(self) -> None:
        self._snapshots = [core.counters.snapshot() for core in self.machine.cores]
        self._start_ns = self.machine.sim.now

    def end(self, requests: int) -> PerRequestCost:
        if self._snapshots is None:
            raise RuntimeError("begin() was not called")
        if requests <= 0:
            raise ValueError("requests must be positive")
        busy = instructions = stall = 0.0
        for core, snap in zip(self.machine.cores, self._snapshots):
            delta = core.counters.delta(snap)
            busy += delta.busy_ns
            instructions += delta.instructions
            stall += delta.stall_ns
        return PerRequestCost(
            requests=requests,
            busy_ns_per_request=busy / requests,
            instructions_per_request=instructions / requests,
            stall_ns_per_request=stall / requests,
        )

    @property
    def elapsed_ns(self) -> float:
        if self._start_ns is None:
            raise RuntimeError("begin() was not called")
        return self.machine.sim.now - self._start_ns
