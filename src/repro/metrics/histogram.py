"""Latency collection and percentile summaries."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["percentile", "LatencySummary", "LatencyRecorder"]


def percentile(sorted_samples: Sequence[float], p: float) -> float:
    """Linear-interpolation percentile of pre-sorted samples.

    ``p`` in [0, 100].
    """
    if not sorted_samples:
        raise ValueError("no samples")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile out of range: {p}")
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    rank = (p / 100) * (len(sorted_samples) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return sorted_samples[low]
    frac = rank - low
    return sorted_samples[low] * (1 - frac) + sorted_samples[high] * frac


@dataclass(frozen=True)
class LatencySummary:
    """The usual suspects, in the unit the samples were recorded in."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    p999: float
    minimum: float
    maximum: float

    def row(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "p999": self.p999,
            "min": self.minimum,
            "max": self.maximum,
        }


class LatencyRecorder:
    """Accumulates samples; summarises on demand.

    The sorted view is cached and invalidated on insertion, so callers
    that summarise repeatedly (monitoring loops, per-window reports)
    pay one sort per batch of insertions instead of one per call.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: list[float] = []
        self._sorted: list[float] | None = None

    def record(self, value: float) -> None:
        self.samples.append(value)
        self._sorted = None

    def extend(self, values: Iterable[float]) -> None:
        self.samples.extend(values)
        self._sorted = None

    def __len__(self) -> int:
        return len(self.samples)

    def summary_or_none(self) -> LatencySummary | None:
        """Like :meth:`summary`, but None while empty instead of raising."""
        return self.summary() if self.samples else None

    def summary(self) -> LatencySummary:
        if not self.samples:
            raise ValueError(f"recorder {self.name!r} has no samples")
        ordered = self._sorted
        if ordered is None or len(ordered) != len(self.samples):
            ordered = self._sorted = sorted(self.samples)
        return LatencySummary(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=percentile(ordered, 50),
            p90=percentile(ordered, 90),
            p99=percentile(ordered, 99),
            p999=percentile(ordered, 99.9),
            minimum=ordered[0],
            maximum=ordered[-1],
        )
