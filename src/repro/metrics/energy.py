"""A first-order CPU energy model.

The paper's efficiency argument distinguishes three core states with
very different power draw:

* **busy** — retiring instructions (spinning counts!);
* **stalled** — waiting on a memory/coherence fill: the pipeline is
  quiescent, clock gating applies (the Lauberhorn blocked load);
* **idle** — halted in the idle loop (WFI/mwait), deepest savings.

Default wattages are in the regime of a server-class core
(~2-3 W/core busy, a third of that stalled, an order of magnitude less
halted).  E6 uses this to compare spin-polling vs. interrupt vs.
blocked-load+Tryagain.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.core import Core

__all__ = ["PowerParams", "EnergyBreakdown", "core_energy", "machine_energy"]


@dataclass(frozen=True)
class PowerParams:
    busy_watts: float = 2.5
    stall_watts: float = 0.9
    idle_watts: float = 0.25


@dataclass
class EnergyBreakdown:
    """Joules spent per state over a measurement window."""

    busy_j: float
    stall_j: float
    idle_j: float

    @property
    def total_j(self) -> float:
        return self.busy_j + self.stall_j + self.idle_j

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            self.busy_j + other.busy_j,
            self.stall_j + other.stall_j,
            self.idle_j + other.idle_j,
        )


def core_energy(
    core: Core, window_ns: float, power: PowerParams = PowerParams()
) -> EnergyBreakdown:
    """Energy of one core over ``window_ns`` of wall-clock (counting any
    in-progress stall up to 'now')."""
    if window_ns <= 0:
        raise ValueError("window must be positive")
    busy = min(core.counters.busy_ns, window_ns)
    stall = min(core.stall_ns_now(), window_ns - busy)
    idle = max(0.0, window_ns - busy - stall)
    to_joules = 1e-9
    return EnergyBreakdown(
        busy_j=busy * to_joules * power.busy_watts,
        stall_j=stall * to_joules * power.stall_watts,
        idle_j=idle * to_joules * power.idle_watts,
    )


def machine_energy(
    cores, window_ns: float, power: PowerParams = PowerParams()
) -> EnergyBreakdown:
    """Sum of :func:`core_energy` over ``cores``."""
    total = EnergyBreakdown(0.0, 0.0, 0.0)
    for core in cores:
        total = total + core_energy(core, window_ns, power)
    return total
