"""Measurement utilities: latency, energy, CPU cycles (S13)."""

from .cycles import CycleWindow, PerRequestCost
from .energy import EnergyBreakdown, PowerParams, core_energy, machine_energy
from .histogram import LatencyRecorder, LatencySummary, percentile
from .stats import MeanCI, bootstrap_ci, mean, stddev, t_confidence_interval

__all__ = [
    "CycleWindow",
    "EnergyBreakdown",
    "LatencyRecorder",
    "LatencySummary",
    "PerRequestCost",
    "PowerParams",
    "core_energy",
    "machine_energy",
    "percentile",
    "MeanCI",
    "bootstrap_ci",
    "mean",
    "stddev",
    "t_confidence_interval",
]
