"""Network substrate: wire formats, links, and a switch (S4)."""

from .checksum import internet_checksum, verify_checksum
from .headers import (
    ETHERTYPE_IPV4,
    IPPROTO_UDP,
    EthernetHeader,
    HeaderError,
    Ipv4Header,
    MacAddress,
    UdpHeader,
)
from .link import Link, LinkStats, Port, SwitchFabric
from .topology import Topology, TopologySpec
from .packet import (
    Frame,
    ParsedUdp,
    build_udp_frame,
    ip_address,
    parse_udp_frame,
)

__all__ = [
    "ETHERTYPE_IPV4",
    "EthernetHeader",
    "Frame",
    "HeaderError",
    "IPPROTO_UDP",
    "Ipv4Header",
    "Link",
    "LinkStats",
    "MacAddress",
    "ParsedUdp",
    "Port",
    "SwitchFabric",
    "Topology",
    "TopologySpec",
    "UdpHeader",
    "build_udp_frame",
    "internet_checksum",
    "ip_address",
    "parse_udp_frame",
    "verify_checksum",
]
