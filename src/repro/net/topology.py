"""Rack-scale switch topology: N ToR fabrics under an optional spine.

The single-machine testbeds wire everything into one
:class:`~repro.net.link.SwitchFabric`.  A :class:`Topology` scales that
to a rack: each host and client attaches to a top-of-rack switch, and
when there is more than one ToR a spine switch stitches them together
over trunk links.  Every hop keeps the existing link model — egress
serialisation + propagation per direction — so cross-rack RPCs pay
ToR switching, trunk wire time, spine switching, and the far ToR
again, with queueing emerging from the same FIFO links the
single-switch beds use.

Degenerate case: ``n_tors == 1`` builds exactly one fabric, no spine,
no trunks, and **zero extra simulator processes**, which is what lets
a 1-host fleet replay byte-identical to the legacy testbeds.

Routing is static and explicit: attaching an endpoint registers its
MAC on the spine (pointing at the owning ToR's downlinks) and each ToR
default-routes unknown destinations up its trunks.  Multiple trunks
per ToR form an ECMP group resolved by the fabric's seed-salted flow
hash (:meth:`SwitchFabric._flow_index`), so paths are deterministic
and flow-affine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..sim.engine import Simulator
from ..sim.rng import derive_seed
from .link import Port, SwitchFabric
from .headers import MacAddress

__all__ = ["TopologySpec", "Topology"]

#: synthetic locally-administered MAC prefixes for trunk attachment
#: points (never a frame's destination, only a port identity)
_TOR_UPLINK_BASE = 0x02FE_0000_0000
_SPINE_DOWNLINK_BASE = 0x02FD_0000_0000


@dataclass(frozen=True)
class TopologySpec:
    """Shape and timing of the rack fabric.

    ``bandwidth_bps`` of ``None`` defers to the builder (which uses the
    host machine's ``link_bps``), keeping a 1-ToR topology identical to
    the legacy single switch.
    """

    n_tors: int = 1
    bandwidth_bps: Optional[float] = None
    port_latency_ns: float = 250.0
    switching_ns: float = 300.0
    #: spine forwarding latency (it is a bigger, slower switch)
    spine_switching_ns: float = 350.0
    #: one-way propagation of a ToR<->spine trunk run
    trunk_latency_ns: float = 500.0
    #: parallel trunks per ToR (>1 forms an ECMP group)
    n_trunks: int = 1

    def __post_init__(self):
        if self.n_tors < 1:
            raise ValueError("a topology needs at least one ToR")
        if self.n_trunks < 1:
            raise ValueError("each ToR needs at least one trunk")


class Topology:
    """N ToR switches, optionally meshed through one spine."""

    def __init__(
        self,
        sim: Simulator,
        spec: TopologySpec = TopologySpec(),
        *,
        bandwidth_bps: Optional[float] = None,
        seed: int = 0,
    ):
        self.sim = sim
        self.spec = spec
        self.seed = seed
        bandwidth = spec.bandwidth_bps
        if bandwidth is None:
            bandwidth = bandwidth_bps if bandwidth_bps is not None else 100e9 / 8
        self.bandwidth_bps = bandwidth
        #: MAC value -> owning ToR index, for route bookkeeping
        self.endpoint_tor: dict[int, int] = {}

        self.tors = [
            SwitchFabric(
                sim,
                bandwidth_bps=bandwidth,
                port_latency_ns=spec.port_latency_ns,
                switching_ns=spec.switching_ns,
                name=f"tor{i}" if spec.n_tors > 1 else "switch",
            )
            for i in range(spec.n_tors)
        ]
        self.spine: Optional[SwitchFabric] = None
        #: per-ToR tuple of uplink ports (on the ToR, towards the spine)
        self.uplinks: list[tuple[Port, ...]] = [() for _ in self.tors]
        #: per-ToR tuple of downlink ports (on the spine, towards it)
        self.downlinks: list[tuple[Port, ...]] = [() for _ in self.tors]

        if spec.n_tors > 1:
            self.spine = SwitchFabric(
                sim,
                bandwidth_bps=bandwidth,
                port_latency_ns=spec.port_latency_ns,
                switching_ns=spec.spine_switching_ns,
                name="spine",
            )
            for index, tor in enumerate(self.tors):
                ups, downs = [], []
                for trunk in range(spec.n_trunks):
                    up = tor.attach(
                        MacAddress(_TOR_UPLINK_BASE + (index << 8) + trunk),
                        name=f"{tor.name}.up{trunk}",
                        latency_ns=spec.trunk_latency_ns,
                    )
                    down = self.spine.attach(
                        MacAddress(_SPINE_DOWNLINK_BASE + (index << 8) + trunk),
                        name=f"spine.d{index}t{trunk}",
                        latency_ns=spec.trunk_latency_ns,
                    )
                    self._shuttle(up, down, f"trunk-{tor.name}.{trunk}")
                    ups.append(up)
                    downs.append(down)
                self.uplinks[index] = tuple(ups)
                self.downlinks[index] = tuple(downs)
                tor.set_default_routes(*ups)
            # Distinct salts so the spine does not mirror a ToR's ECMP
            # decisions (which would polarise traffic onto one trunk).
            for fabric in self.switches():
                fabric.ecmp_salt = derive_seed(seed, "ecmp", fabric.name)

    # -- wiring ----------------------------------------------------------

    def _shuttle(self, a: Port, b: Port, name: str) -> None:
        """Bridge two ports with one FIFO forwarding process per way."""

        def pump(src: Port, dst: Port):
            while True:
                frame = yield from src.receive()
                yield from dst.send(frame)

        self.sim.process(pump(a, b), name=f"{name}-up")
        self.sim.process(pump(b, a), name=f"{name}-down")

    def attach(
        self,
        mac: MacAddress,
        name: str = "",
        *,
        tor: int = 0,
        latency_ns: Optional[float] = None,
    ) -> Port:
        """Attach an endpoint to ToR ``tor`` and register its routes."""
        port = self.tors[tor].attach(mac, name, latency_ns=latency_ns)
        self.register_endpoint(mac, tor)
        return port

    def register_endpoint(self, mac: MacAddress, tor: int) -> None:
        """Record that ``mac`` lives under ToR ``tor``; route the spine."""
        if not 0 <= tor < len(self.tors):
            raise ValueError(f"no such ToR: {tor}")
        self.endpoint_tor[mac.value] = tor
        if self.spine is not None:
            self.spine.add_route(mac, *self.downlinks[tor])

    # -- introspection ---------------------------------------------------

    def switches(self) -> Iterator[SwitchFabric]:
        """All fabrics, ToRs first, spine (if any) last."""
        yield from self.tors
        if self.spine is not None:
            yield self.spine

    def hops(self, src_mac: MacAddress, dst_mac: MacAddress) -> int:
        """Switch count on the src->dst path (1 same-rack, 3 cross)."""
        src = self.endpoint_tor.get(src_mac.value)
        dst = self.endpoint_tor.get(dst_mac.value)
        if src is None or dst is None:
            raise KeyError("both endpoints must be attached")
        return 1 if src == dst else 3
