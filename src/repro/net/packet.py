"""Frame construction and parsing: wire bytes in, wire bytes out.

Everything that crosses a simulated link is a :class:`Frame` wrapping
the exact bytes an Ethernet/IPv4/UDP datagram would have on a real
wire.  NIC models parse these bytes with the decoders in
:mod:`repro.net.headers`, so bugs like a wrong length field actually
break delivery — the same failure surface as hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from .checksum import internet_checksum
from .headers import (
    ETHERTYPE_IPV4,
    IPPROTO_UDP,
    EthernetHeader,
    HeaderError,
    Ipv4Header,
    MacAddress,
    UdpHeader,
)

__all__ = ["Frame", "ParsedUdp", "build_udp_frame", "parse_udp_frame", "ip_address"]

#: Minimum Ethernet payload is padded on real wires; we keep exact sizes
#: but account for the 64 B minimum in link serialisation time.
MIN_WIRE_BYTES = 64
#: Preamble+SFD+FCS+IPG overhead charged per frame on the wire.
WIRE_OVERHEAD_BYTES = 24


def ip_address(text: str) -> int:
    """Parse dotted-quad notation into a 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise HeaderError(f"bad IPv4 address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise HeaderError(f"bad IPv4 octet in {text!r}")
        value = (value << 8) | octet
    return value


class Frame:
    """An Ethernet frame: raw bytes plus simulation metadata.

    Frames are the single most-allocated object in any end-to-end
    experiment, so the class is ``__slots__``-only and the ``meta``
    dict — opaque per-frame metadata for experiments (request ids,
    observability contexts) — is allocated lazily on first use.  Most
    data-plane frames never touch it: an unarmed run moves frames with
    two fields and no dict at all.  Read-side consumers should prefer
    :meth:`peek_meta` / :meth:`pop_meta` / :meth:`copy_meta`, which
    never materialise the dict; writing through :attr:`meta` allocates
    it on demand.
    """

    __slots__ = ("data", "born_ns", "_meta")

    def __init__(self, data: bytes, born_ns: float = 0.0,
                 meta: dict | None = None):
        self.data = data
        #: Simulation time the frame was created (for end-to-end latency).
        self.born_ns = born_ns
        # An empty dict is normalised away: the frame allocates its own
        # on first write, so callers passing a dict share it only when
        # it carries something.
        self._meta = meta or None

    @property
    def meta(self) -> dict:
        """The metadata dict, allocated on first access."""
        meta = self._meta
        if meta is None:
            meta = self._meta = {}
        return meta

    def peek_meta(self, key, default=None):
        """``meta.get(key, default)`` without materialising the dict."""
        meta = self._meta
        return default if meta is None else meta.get(key, default)

    def pop_meta(self, key, default=None):
        """``meta.pop(key, default)`` without materialising the dict."""
        meta = self._meta
        return default if meta is None else meta.pop(key, default)

    def copy_meta(self) -> dict:
        """A shallow copy of the metadata (a fresh dict if empty)."""
        meta = self._meta
        return {} if not meta else dict(meta)

    def __len__(self) -> int:
        return len(self.data)

    # Equality/hash preserve the old frozen-dataclass contract: frames
    # compare by wire bytes and birth time; metadata never counts.
    def __eq__(self, other) -> bool:
        if type(other) is not Frame:
            return NotImplemented
        return self.data == other.data and self.born_ns == other.born_ns

    def __hash__(self) -> int:
        return hash((self.data, self.born_ns))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Frame(data=<{len(self.data)} B>, born_ns={self.born_ns}, "
                f"meta={self._meta})")

    @property
    def wire_bytes(self) -> int:
        """Bytes occupying the wire, with padding and framing overhead."""
        return max(len(self.data), MIN_WIRE_BYTES) + WIRE_OVERHEAD_BYTES


@dataclass(frozen=True)
class ParsedUdp:
    """A fully decoded UDP-in-IPv4-in-Ethernet frame."""

    eth: EthernetHeader
    ip: Ipv4Header
    udp: UdpHeader
    payload: bytes


def build_udp_frame(
    src_mac: MacAddress,
    dst_mac: MacAddress,
    src_ip: int,
    dst_ip: int,
    src_port: int,
    dst_port: int,
    payload: bytes,
    born_ns: float = 0.0,
    meta: dict | None = None,
) -> Frame:
    """Assemble a byte-exact UDP frame with valid checksums."""
    udp_length = UdpHeader.SIZE + len(payload)
    checksum = UdpHeader.compute_checksum(src_ip, dst_ip, src_port, dst_port, payload)
    udp = UdpHeader(src_port, dst_port, udp_length, checksum)
    ip = Ipv4Header(
        src=src_ip,
        dst=dst_ip,
        total_length=Ipv4Header.SIZE + udp_length,
        protocol=IPPROTO_UDP,
    )
    eth = EthernetHeader(dst=dst_mac, src=src_mac, ethertype=ETHERTYPE_IPV4)
    data = eth.pack() + ip.pack() + udp.pack() + payload
    return Frame(data=data, born_ns=born_ns, meta=meta or None)


def parse_udp_frame(frame: Frame, verify: bool = True) -> ParsedUdp:
    """Decode an Ethernet/IPv4/UDP frame; raises HeaderError if invalid."""
    raw = frame.data
    eth = EthernetHeader.unpack(raw)
    if eth.ethertype != ETHERTYPE_IPV4:
        raise HeaderError(f"not IPv4: ethertype={eth.ethertype:#06x}")
    ip_start = EthernetHeader.SIZE
    ip = Ipv4Header.unpack(raw[ip_start:], verify=verify)
    if ip.protocol != IPPROTO_UDP:
        raise HeaderError(f"not UDP: protocol={ip.protocol}")
    if len(raw) < ip_start + ip.total_length:
        raise HeaderError(
            f"frame shorter ({len(raw)} B) than IP total_length ({ip.total_length})"
        )
    udp_start = ip_start + Ipv4Header.SIZE
    udp = UdpHeader.unpack(raw[udp_start:])
    payload_start = udp_start + UdpHeader.SIZE
    payload = raw[payload_start : udp_start + udp.length]
    if len(payload) != udp.length - UdpHeader.SIZE:
        raise HeaderError("UDP payload truncated")
    if verify and udp.checksum:
        expected = UdpHeader.compute_checksum(
            ip.src, ip.dst, udp.src_port, udp.dst_port, payload
        )
        if expected != udp.checksum:
            raise HeaderError("UDP checksum mismatch")
    return ParsedUdp(eth=eth, ip=ip, udp=udp, payload=payload)
