"""Point-to-point link and switch fabric models.

A :class:`Link` serialises frames at line rate and delays them by the
propagation time; a :class:`SwitchFabric` connects many ports and
forwards by destination MAC with a fixed switching latency.  This is
all the "network" the paper's single-machine experiments need: the
argument is about *end-system* latency, so the wire exists mainly to
carry byte-exact frames between a load generator and the server under
test.

For rack-scale topologies (:mod:`repro.net.topology`) a fabric also
carries *routes*: destination MACs reachable through another port
(a trunk towards a spine or ToR switch) rather than locally attached.
A route may name several parallel ports, in which case the fabric
picks one by hashing the flow 4-tuple (ECMP) — deterministic,
seed-salted, and flow-affine, so one flow never spans two paths and
intra-flow FIFO order is preserved end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..sim.clock import bytes_time_ns
from ..sim.engine import Simulator
from ..sim.resources import Store
from .headers import MacAddress
from .packet import Frame

__all__ = ["LinkStats", "Link", "SwitchFabric", "Port"]


@dataclass
class LinkStats:
    frames: int = 0
    bytes: int = 0
    delivered: int = 0
    dropped: int = 0
    dropped_bytes: int = 0
    #: frames destroyed/mutated by an installed fault injector
    fault_lost: int = 0
    fault_corrupted: int = 0
    fault_reordered: int = 0
    fault_duplicated: int = 0

    def in_flight(self) -> int:
        """Frames transmitted but not yet delivered, dropped, or lost."""
        return (self.frames + self.fault_duplicated
                - self.delivered - self.dropped - self.fault_lost)


class Link:
    """Unidirectional link: serialisation + propagation, FIFO order."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float = 100e9 / 8,
        propagation_ns: float = 500.0,
        queue_frames: Optional[int] = None,
        name: str = "",
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.propagation_ns = propagation_ns
        self.name = name
        self.stats = LinkStats()
        self.rx_queue: Store = Store(sim, capacity=queue_frames, name=f"{name}.rx")
        #: optional fault injector (repro.faults.LinkFaultInjector)
        self.fault = None
        #: optional drop observer: ``on_drop(link, frame, reason)``
        self.on_drop: Optional[Callable[["Link", Frame, str], None]] = None
        #: optional delivery observer: ``on_deliver(link, frame)`` —
        #: used by the fleet flow-order invariant; None keeps delivery
        #: at a single attribute test
        self.on_deliver: Optional[Callable[["Link", Frame], None]] = None
        #: next time the transmitter is free (models serialisation).
        self._tx_free_at = 0.0

    def serialization_ns(self, frame: Frame) -> float:
        return bytes_time_ns(frame.wire_bytes, self.bandwidth_bps)

    def send(self, frame: Frame):
        """Transmit ``frame``; generator returning once it is on the wire.

        Delivery into the receiver's queue happens ``propagation_ns``
        after the last bit leaves.  Frames that arrive to a full queue
        are dropped (tail drop), which the stats record.
        """
        start = max(self.sim.now, self._tx_free_at)
        done = start + self.serialization_ns(frame)
        self._tx_free_at = done
        yield self.sim.timeout(done - self.sim.now)
        self.stats.frames += 1
        self.stats.bytes += frame.wire_bytes

        if self.fault is None:
            self._spawn_delivery(frame, self.propagation_ns)
        else:
            for fated, extra_ns in self.fault.fate(self, frame):
                self._spawn_delivery(fated, self.propagation_ns + extra_ns)
        return None

    def count_drop(self, frame: Frame, reason: str) -> None:
        """Account one dropped frame and surface it to any observer."""
        self.stats.dropped += 1
        self.stats.dropped_bytes += frame.wire_bytes
        if self.on_drop is not None:
            self.on_drop(self, frame, reason)

    def _spawn_delivery(self, frame: Frame, delay_ns: float) -> None:
        def deliver():
            yield self.sim.timeout(delay_ns)
            if self.rx_queue.try_put(frame):
                self.stats.delivered += 1
                if self.on_deliver is not None:
                    self.on_deliver(self, frame)
            else:
                self.count_drop(frame, "queue-full")

        self.sim.process(deliver())

    def receive(self):
        """Generator yielding until a frame is available; returns it."""
        frame = yield self.rx_queue.get()
        return frame


class Port:
    """A bidirectional attachment point on a :class:`SwitchFabric`."""

    def __init__(self, fabric: "SwitchFabric", mac: MacAddress, name: str = "",
                 latency_ns: Optional[float] = None):
        self.fabric = fabric
        self.mac = mac
        self.name = name or str(mac)
        # Trunk ports override the fabric's port latency to model the
        # longer inter-switch runs of a rack topology.
        propagation = (fabric.port_latency_ns if latency_ns is None
                       else latency_ns)
        self.ingress = Link(
            fabric.sim,
            fabric.bandwidth_bps,
            propagation,
            name=f"{self.name}.in",
        )
        self.egress = Link(
            fabric.sim,
            fabric.bandwidth_bps,
            propagation,
            name=f"{self.name}.out",
        )

    def send(self, frame: Frame):
        """Send into the fabric; generator."""
        yield from self.ingress.send(frame)
        return None

    def receive(self):
        """Receive from the fabric; generator returning a Frame."""
        frame = yield from self.egress.receive()
        return frame

    def bind_metrics(self, registry, prefix: str = "port") -> None:
        """Register both directions' :class:`LinkStats` on a registry."""
        registry.bind(f"{prefix}.in", self.ingress.stats)
        registry.bind(f"{prefix}.out", self.egress.stats)


class SwitchFabric:
    """A store-and-forward switch keyed by destination MAC."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float = 100e9 / 8,
        port_latency_ns: float = 250.0,
        switching_ns: float = 300.0,
        name: str = "switch",
    ):
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.port_latency_ns = port_latency_ns
        self.switching_ns = switching_ns
        self.name = name
        self.ports: dict[int, Port] = {}
        self.unknown_dst_drops = 0
        #: destination MACs reachable through other switches: MAC value
        #: -> tuple of candidate ports (several = ECMP group)
        self.routes: dict[int, tuple[Port, ...]] = {}
        #: where unknown destinations go (a ToR's uplinks); empty tuple
        #: preserves the historical drop behaviour
        self.default_routes: tuple[Port, ...] = ()
        #: mixed into the ECMP flow hash so distinct fleets (or
        #: switches) spread the same flows differently
        self.ecmp_salt = 0

    def attach(self, mac: MacAddress, name: str = "",
               latency_ns: Optional[float] = None) -> Port:
        """Create a port for ``mac`` and start its forwarding loop."""
        if mac.value in self.ports:
            raise ValueError(f"MAC {mac} already attached")
        port = Port(self, mac, name, latency_ns=latency_ns)
        self.ports[mac.value] = port
        self.sim.process(self._forward_loop(port), name=f"switch-fwd-{port.name}")
        return port

    def add_route(self, mac: MacAddress | int, *ports: Port) -> None:
        """Route frames for ``mac`` out of ``ports`` (several = ECMP)."""
        if not ports:
            raise ValueError("a route needs at least one port")
        value = mac if isinstance(mac, int) else mac.value
        self.routes[value] = tuple(ports)

    def set_default_routes(self, *ports: Port) -> None:
        """Send unknown destinations out of ``ports`` (a ToR's uplinks)."""
        self.default_routes = tuple(ports)

    def bind_metrics(self, registry, prefix: str = "switch") -> None:
        """Register fabric drops and every port's link counters."""
        registry.probe(prefix, lambda: {
            "unknown_dst_drops": self.unknown_dst_drops,
        })
        for port in self.ports.values():
            port.bind_metrics(registry, f"{prefix}.{port.name}")

    def _route_port(self, dst_value: int, frame: Frame) -> Optional[Port]:
        """Resolve a non-local destination through the route table."""
        candidates = self.routes.get(dst_value) or self.default_routes
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]
        return candidates[self._flow_index(frame, len(candidates))]

    def _flow_index(self, frame: Frame, n: int) -> int:
        """ECMP member choice: RSS-style hash of the flow 4-tuple.

        A pure function of the wire bytes and the fabric's salt, so the
        same flow always takes the same path (flow affinity, hence no
        intra-flow reordering) while distinct flows spread.  Non-UDP/IP
        frames fall back to member 0.
        """
        from ..nic.rss import rss_hash
        from .headers import (
            ETHERTYPE_IPV4, EthernetHeader, HeaderError, Ipv4Header,
            UdpHeader,
        )

        raw = frame.data
        try:
            eth = EthernetHeader.unpack(raw)
            if eth.ethertype != ETHERTYPE_IPV4:
                return 0
            ip = Ipv4Header.unpack(raw[EthernetHeader.SIZE:], verify=False)
            udp = UdpHeader.unpack(
                raw[EthernetHeader.SIZE + Ipv4Header.SIZE:]
            )
        except (HeaderError, ValueError):
            return 0
        value = rss_hash(ip.src, ip.dst, udp.src_port, udp.dst_port)
        return (value ^ self.ecmp_salt) % n

    def _forward_loop(self, port: Port):
        from .headers import EthernetHeader

        while True:
            frame = yield from port.ingress.receive()
            yield self.sim.timeout(self.switching_ns)
            eth = EthernetHeader.unpack(frame.data)
            target = self.ports.get(eth.dst.value)
            if target is None:
                target = self._route_port(eth.dst.value, frame)
            if target is None:
                self.unknown_dst_drops += 1
                continue
            # Egress serialisation runs in its own process so one slow
            # output port does not head-of-line block the whole switch.
            self.sim.process(target.egress.send(frame))
