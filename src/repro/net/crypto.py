"""Encryption cost models (Section 6: "encryption can be handled with
fairly standard techniques").

Two ways to pay for AEAD (AES-GCM-style) protection of RPC payloads:

* **software** — on the host CPU with AES-NI-class instructions:
  a fixed per-record setup (key schedule amortised, IV handling, tag
  check) plus a per-byte cost.  Calibrated to the ~0.7-1.5
  cycles/byte regime of AES-NI GCM plus typical TLS-record overheads.
* **NIC inline** — a pipeline stage on the NIC that en/decrypts at
  (near) line rate, adding latency but zero host instructions; the
  model mirrors the deserialisation offload's shape.

The ablation experiment (bench_ablation.py) compares stacks with
encryption on: the software stacks pay per byte on the critical path,
Lauberhorn hides it in the NIC pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CryptoParams", "DEFAULT_CRYPTO", "software_crypto_instructions",
           "nic_crypto_ns"]


@dataclass(frozen=True)
class CryptoParams:
    """AEAD cost knobs."""

    sw_fixed_instructions: int = 400
    sw_instructions_per_byte: float = 1.2
    nic_fixed_ns: float = 30.0
    nic_ns_per_64b: float = 3.0


DEFAULT_CRYPTO = CryptoParams()


def software_crypto_instructions(
    nbytes: int, params: CryptoParams = DEFAULT_CRYPTO
) -> int:
    """Host instructions to seal or open an ``nbytes`` record."""
    if nbytes < 0:
        raise ValueError("negative record size")
    return int(
        params.sw_fixed_instructions + params.sw_instructions_per_byte * nbytes
    )


def nic_crypto_ns(nbytes: int, params: CryptoParams = DEFAULT_CRYPTO) -> float:
    """NIC pipeline time to seal or open an ``nbytes`` record inline."""
    if nbytes < 0:
        raise ValueError("negative record size")
    return params.nic_fixed_ns + params.nic_ns_per_64b * math.ceil(
        max(nbytes, 1) / 64
    )
