"""Byte-exact Ethernet II, IPv4, and UDP headers.

The Lauberhorn FPGA pipeline streams frames through header decoders
(Section 5.1); our simulated NICs do the same over these parsers, so
demultiplexing operates on real wire bytes rather than Python objects.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from .checksum import internet_checksum

__all__ = [
    "MacAddress",
    "EthernetHeader",
    "Ipv4Header",
    "UdpHeader",
    "HeaderError",
    "ETHERTYPE_IPV4",
    "IPPROTO_UDP",
]

ETHERTYPE_IPV4 = 0x0800
IPPROTO_UDP = 17


class HeaderError(ValueError):
    """Malformed or truncated header."""


@dataclass(frozen=True)
class MacAddress:
    """A 48-bit Ethernet address."""

    value: int

    def __post_init__(self):
        if not 0 <= self.value < (1 << 48):
            raise HeaderError(f"MAC out of range: {self.value:#x}")

    @classmethod
    def from_string(cls, text: str) -> "MacAddress":
        parts = text.split(":")
        if len(parts) != 6:
            raise HeaderError(f"bad MAC string: {text!r}")
        return cls(int("".join(parts), 16))

    @classmethod
    def from_bytes(cls, raw: bytes) -> "MacAddress":
        if len(raw) != 6:
            raise HeaderError(f"MAC needs 6 bytes, got {len(raw)}")
        return cls(int.from_bytes(raw, "big"))

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(6, "big")

    def __str__(self) -> str:
        raw = self.to_bytes()
        return ":".join(f"{b:02x}" for b in raw)


@dataclass(frozen=True)
class EthernetHeader:
    """Ethernet II header (no VLAN tags, no FCS)."""

    dst: MacAddress
    src: MacAddress
    ethertype: int = ETHERTYPE_IPV4

    SIZE = 14

    def pack(self) -> bytes:
        return self.dst.to_bytes() + self.src.to_bytes() + struct.pack(
            "!H", self.ethertype
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "EthernetHeader":
        if len(raw) < cls.SIZE:
            raise HeaderError(f"Ethernet header truncated: {len(raw)} B")
        return cls(
            dst=MacAddress.from_bytes(raw[0:6]),
            src=MacAddress.from_bytes(raw[6:12]),
            ethertype=struct.unpack("!H", raw[12:14])[0],
        )


@dataclass(frozen=True)
class Ipv4Header:
    """IPv4 header without options (IHL = 5)."""

    src: int  # 32-bit address
    dst: int
    total_length: int
    protocol: int = IPPROTO_UDP
    ttl: int = 64
    identification: int = 0
    dscp: int = 0

    SIZE = 20

    def pack(self) -> bytes:
        version_ihl = (4 << 4) | 5
        header = struct.pack(
            "!BBHHHBBH4s4s",
            version_ihl,
            self.dscp << 2,
            self.total_length,
            self.identification,
            0,  # flags/fragment offset
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            self.src.to_bytes(4, "big"),
            self.dst.to_bytes(4, "big"),
        )
        checksum = internet_checksum(header)
        return header[:10] + struct.pack("!H", checksum) + header[12:]

    @classmethod
    def unpack(cls, raw: bytes, verify: bool = True) -> "Ipv4Header":
        if len(raw) < cls.SIZE:
            raise HeaderError(f"IPv4 header truncated: {len(raw)} B")
        (
            version_ihl,
            dscp_ecn,
            total_length,
            identification,
            _flags_frag,
            ttl,
            protocol,
            _checksum,
            src_raw,
            dst_raw,
        ) = struct.unpack("!BBHHHBBH4s4s", raw[: cls.SIZE])
        version, ihl = version_ihl >> 4, version_ihl & 0xF
        if version != 4:
            raise HeaderError(f"not IPv4 (version={version})")
        if ihl != 5:
            raise HeaderError(f"IPv4 options unsupported (ihl={ihl})")
        if verify and internet_checksum(raw[: cls.SIZE]) != 0:
            raise HeaderError("IPv4 header checksum mismatch")
        return cls(
            src=int.from_bytes(src_raw, "big"),
            dst=int.from_bytes(dst_raw, "big"),
            total_length=total_length,
            protocol=protocol,
            ttl=ttl,
            identification=identification,
            dscp=dscp_ecn >> 2,
        )


@dataclass(frozen=True)
class UdpHeader:
    """UDP header; the checksum covers the RFC 768 pseudo-header."""

    src_port: int
    dst_port: int
    length: int
    checksum: int = 0

    SIZE = 8

    def pack(self) -> bytes:
        return struct.pack(
            "!HHHH", self.src_port, self.dst_port, self.length, self.checksum
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "UdpHeader":
        if len(raw) < cls.SIZE:
            raise HeaderError(f"UDP header truncated: {len(raw)} B")
        src_port, dst_port, length, checksum = struct.unpack("!HHHH", raw[:8])
        return cls(src_port, dst_port, length, checksum)

    @staticmethod
    def compute_checksum(
        src_ip: int, dst_ip: int, src_port: int, dst_port: int, payload: bytes
    ) -> int:
        length = UdpHeader.SIZE + len(payload)
        pseudo = struct.pack(
            "!4s4sBBH",
            src_ip.to_bytes(4, "big"),
            dst_ip.to_bytes(4, "big"),
            0,
            IPPROTO_UDP,
            length,
        )
        segment = struct.pack("!HHHH", src_port, dst_port, length, 0) + payload
        checksum = internet_checksum(pseudo + segment)
        # RFC 768: a computed zero is transmitted as all ones.
        return checksum or 0xFFFF
