"""lauberhorn-sim: a simulation reproduction of "The NIC should be part
of the OS." (Xu & Roscoe, HotOS '25).

Subpackages (see DESIGN.md for the full inventory):

* :mod:`repro.sim` — discrete-event simulation engine
* :mod:`repro.hw` — cores, caches, coherence fabric, interconnects
* :mod:`repro.net` — wire formats, links, switch, crypto models
* :mod:`repro.nic` — DMA, bypass, and Lauberhorn NIC models
* :mod:`repro.os` — kernel, scheduler, netstack, NIC-driven scheduling
* :mod:`repro.rpc` — RPC wire format, marshalling, services, servers
* :mod:`repro.mc` — explicit-state model checker + protocol spec
* :mod:`repro.workloads` — clients, distributions, generators
* :mod:`repro.metrics` — latency, cycles, energy
* :mod:`repro.experiments` — one module per paper figure/claim
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
