"""The full design space of Section 2, side by side.

Four server architectures for the same echo workload:

* **linux**      — DMA NIC, interrupts, softirq, sockets (Figure 1);
* **snap**       — dedicated engine core + schedulable workers over
  shared-memory channels (Snap, SOSP'19);
* **bypass**     — pinned PMD worker on a user-polled ring
  (DPDK/Arrakis/IX);
* **lauberhorn** — the paper's OS-integrated coherent NIC.

This is the quantitative version of the paper's Section 2 survey: each
point trades flexibility against data-path cost, and Lauberhorn sits
below all of them on both latency and host cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.cycles import CycleWindow
from ..metrics.histogram import LatencyRecorder
from ..sim.clock import MS
from .report import fmt_ns, print_table
from .testbed import (
    build_bypass_testbed,
    build_lauberhorn_testbed,
    build_linux_testbed,
    deploy_service,
)

__all__ = ["StackResult", "STACKS", "measure_stack", "render_four_stacks",
           "run_four_stacks"]

HANDLER_COST = 500


@dataclass(frozen=True)
class StackResult:
    stack: str
    p50_rtt_ns: float
    p99_rtt_ns: float
    busy_ns_per_request: float


def _measure(bed, service, method, n_requests: int) -> StackResult:
    client = bed.clients[0]
    recorder = LatencyRecorder()
    window = CycleWindow(bed.machine)
    state = {}

    def driver():
        yield bed.sim.timeout(10_000)
        yield from client.call(args=[0], **bed.call_args(service, method))
        window.begin()
        events = [
            client.send_request(
                bed.server_mac, bed.server_ip, service.udp_port,
                service.service_id, method.method_id, [i],
            )
            for i in range(n_requests)
        ]
        for event in events:
            result = yield event
            recorder.record(result.rtt_ns)
        state["cost"] = window.end(n_requests)

    bed.sim.process(driver())
    bed.machine.run(until=2000 * MS)
    summary = recorder.summary()
    return summary, state["cost"]


def _build_stack(stack: str):
    """A fresh echo testbed for one of the four architectures."""
    if stack == "linux":
        bed = build_linux_testbed()
    elif stack in ("snap", "bypass"):
        bed = build_bypass_testbed()
    elif stack == "lauberhorn":
        bed = build_lauberhorn_testbed()
    else:
        raise ValueError(f"unknown stack {stack!r}")
    service, method = deploy_service(bed, stack,
                                     cost_instructions=HANDLER_COST)
    return bed, service, method


STACKS = ("linux", "snap", "bypass", "lauberhorn")


def measure_stack(stack: str, n_requests: int = 25) -> StackResult:
    """One design-space point: one architecture, the same echo workload."""
    bed, service, method = _build_stack(stack)
    summary, cost = _measure(bed, service, method, n_requests)
    return StackResult(stack, summary.p50, summary.p99,
                       cost.busy_ns_per_request)


def render_four_stacks(results: list[StackResult]) -> None:
    print_table(
        ["stack", "p50 RTT", "p99 RTT", "busy/req"],
        [(r.stack, fmt_ns(r.p50_rtt_ns), fmt_ns(r.p99_rtt_ns),
          fmt_ns(r.busy_ns_per_request)) for r in results],
        title="Section 2's design space — four stacks, one workload",
    )


def run_four_stacks(n_requests: int = 25, verbose: bool = True) -> list[StackResult]:
    results = [measure_stack(stack, n_requests) for stack in STACKS]
    if verbose:
        render_four_stacks(results)
    return results
