"""E25 — tenant-scoped SLOs: burn-rate alerts, budgets, and flame diffs.

E24 established *that* a noisy neighbour wrecks a victim tenant's tail
and that the tenancy machinery can contain it.  E25 asks the operator
question on top: does the observability layer *notice in time*?  Each
cell runs the E24 noisy-neighbour shape (calm victim, storm aggressor,
optional bystanders) with an :class:`~repro.obs.slo.SLOTracker` armed:
the victim carries a latency objective (tight or loose), the tracker's
error-budget ledger runs in simulated ns, and multi-window burn-rate
alerts must fire *before* the budget actually exhausts — never in calm
cells, always ahead of exhaustion in violated storm cells.  The storm
starts only after a long calm prefix, exactly the regime burn-rate
alerting is for: the fast window saturates with bad completions while
the cumulative ledger still holds pre-storm credit.

Each armed run also folds its span trees into per-(host, tenant)
flamegraphs (:mod:`repro.obs.flame`) — exact simulated-ns self-time
attribution, validated against the root durations identically — and
reports the victim-vs-aggressor per-request stack diff.  A ``guard``
cell closes the loop: the ``slo_guard`` policy reads the tracker's
``burn_fast`` probe rows out of sampler windows and tightens the
aggressor's admission, E22-style.

Grids: tenant-count x objective-tightness x interference on a single
Lauberhorn host, plus tight-objective calm/storm cells on the 2-ToR
fleet (storm pounding host 0 only — the cross-host tail attribution
case: host0's victim replica pages, host1's stays green).

Every identity-eligible cell is run twice, unarmed then armed, and the
victim RTT streams must match exactly — the one-``is None`` arming
convention, extended to SLO/flame.  Artifact:
``results/e25_slo.json`` (schema-checked by
:func:`validate_slo_payload`).
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field

from ..check import install_checks, install_fleet_checks
from ..ctrl import Actuators, AdmissionGate, Controller, PolicySpec
from ..fleet import HostSpec, build_fleet
from ..net.topology import TopologySpec
from ..obs import (
    FlightRecorder,
    SLOSpec,
    SLOTracker,
    TimeSeriesSampler,
    arm_flight,
    arm_testbed,
    bind_testbed_metrics,
    fold_spans,
    speedscope_json,
    tail_report,
    validate_speedscope,
)
from ..sim.clock import MS
from ..tenancy import TenantTable
from ..workloads.distributions import args_for_payload
from ..workloads.generator import OpenLoopGenerator, ServiceMix, Target
from .e24_tenancy import PATTERNS, VICTIM_COST, VICTIM_RATE, _percentile
from .report import fmt_ns, print_table
from .testbed import build_lauberhorn_testbed, deploy_service

__all__ = ["SloCell", "SLO_ARTIFACT", "SINGLE_LABELS", "FLEET_LABELS",
           "cell_labels", "measure_single_cell", "measure_fleet_cell",
           "render_slo", "write_slo_artifact", "validate_slo_payload",
           "run_slo"]

#: default location of the JSON artifact (relative to the runner's cwd)
SLO_ARTIFACT = "results/e25_slo.json"

HORIZON_NS = 50 * MS
FLEET_HORIZON_NS = 60 * MS

#: long calm prefix before the storm.  Alert-before-exhaustion needs
#: the good history inside the slow window to be well under half the
#: *cumulative* good history (windowed burn crosses threshold on
#: ~2f*W goods-in-window bads; cumulative exhaustion on ~f*G total
#: goods), so the prefix is 10 ms of calm traffic against 2 ms / 0.5
#: ms alert windows.
VICTIM_REQUESTS = 600
STORM_DELAY_NS = 10 * MS

#: light bystanders for the 4-tenant cells (sparser than E24's so the
#: calm prefix stays genuinely calm on every core)
BYSTANDER_RATE = 10_000.0
BYSTANDER_REQUESTS = 60

#: objective tightness: "tight" sits above any calm-cell tail but far
#: below storm queueing; "loose" is deliberately unviolatable
TIGHT_THRESHOLD_NS = 20_000.0
LOOSE_THRESHOLD_NS = 5_000_000.0

#: the victim objective: 95% of requests under threshold (5% budget),
#: multi-window burn alerting at 2x sustainable spend
LATENCY_TARGET = 0.95
FAST_WINDOW_NS = 500_000.0
SLOW_WINDOW_NS = 2 * MS
BURN_THRESHOLD = 2.0
MIN_REQUESTS = 8

#: sampler windows double as SLO evaluation instants
WINDOW_NS = 100_000.0
MAX_WINDOWS = 700
FLIGHT_CAPACITY = 512
TAIL_QUANTILE = 0.99

#: slo_guard controller configuration for the guard cell
GUARD_SPEC = "slo_guard,epoch=2,burn=2,hold_step=20000,hold_max=200000"

TENANT_COUNTS = (2, 4)
TIGHTNESS = ("tight", "loose")
INTERFERENCE = ("calm", "storm")

SINGLE_LABELS = tuple(
    [f"{nt}t-{tight}-{noise}"
     for nt in TENANT_COUNTS
     for tight in TIGHTNESS
     for noise in INTERFERENCE]
    + ["2t-tight-storm-guard"]
)
FLEET_LABELS = ("fleet-tight-calm", "fleet-tight-storm")
SECTIONS = ("single", "fleet")


def cell_labels(section: str) -> tuple[str, ...]:
    return {"single": SINGLE_LABELS, "fleet": FLEET_LABELS}[section]


@dataclass(frozen=True)
class SloCell:
    """One measured SLO configuration (JSON-able)."""

    section: str
    label: str
    n_tenants: int
    tightness: str
    interference: str
    guarded: bool
    #: armed victim RTTs byte-identical to the unarmed run (None for
    #: the guard cell, whose controller actuates by design)
    identical: bool | None
    n_victim: int
    victim_completed: int
    victim_p50_ns: float
    victim_p99_ns: float
    victim_p999_ns: float
    #: trimmed ``SLOTracker.report()`` (per-spec ledgers + alerts)
    slo: dict = field(default_factory=dict)
    #: per-(host, tenant) flame summary with exactness proof material
    flame: dict = field(default_factory=dict)
    #: victim-vs-aggressor per-request mean self-time diff (ns)
    flame_diff: dict = field(default_factory=dict)
    #: speedscope export passed schema validation
    speedscope_ok: bool = False
    #: (host, tenant) attribution of the slow-root population
    tail_groups: dict = field(default_factory=dict)
    #: admission holds the slo_guard applied (guard cell only)
    guard_actuations: int = 0
    violations: int = 0
    check_samples: int = 0


def _parse_label(label: str) -> tuple[int, str, str, bool]:
    """``"4t-tight-storm"`` -> (4, "tight", "storm", False)."""
    guarded = label.endswith("-guard")
    if guarded:
        label = label[: -len("-guard")]
    nt, tightness, interference = label.split("-")
    return int(nt.rstrip("t")), tightness, interference, guarded


def _victim_spec(tightness: str) -> SLOSpec:
    threshold = (TIGHT_THRESHOLD_NS if tightness == "tight"
                 else LOOSE_THRESHOLD_NS)
    return SLOSpec(
        name="victim", tenant="victim",
        latency_threshold_ns=threshold,
        latency_target=LATENCY_TARGET,
        fast_window_ns=FAST_WINDOW_NS,
        slow_window_ns=SLOW_WINDOW_NS,
        burn_threshold=BURN_THRESHOLD,
        min_requests=MIN_REQUESTS,
    )


def _aggressor_spec() -> SLOSpec:
    """Availability-flavoured objective for the aggressor itself:
    storm requests that never finish inside 5 ms count as timeouts."""
    return SLOSpec(
        name="aggr", tenant="aggressor",
        latency_threshold_ns=1 * MS,
        latency_target=0.5,
        availability_target=0.9,
        timeout_ns=5 * MS,
        fast_window_ns=FAST_WINDOW_NS,
        slow_window_ns=SLOW_WINDOW_NS,
        burn_threshold=BURN_THRESHOLD,
        min_requests=MIN_REQUESTS,
    )


def _build_table(n_tenants: int, storm: bool) -> TenantTable:
    """Accounting-only tenancy (no budgets/limits): E25 measures the
    *detection* of interference, so the interference must be raw."""
    table = TenantTable()
    table.create("victim", weight=1.0)
    if storm:
        table.create("aggressor", weight=1.0)
    for index in range(max(0, n_tenants - 2)):
        table.create(f"bystander{index}", weight=1.0)
    return table


def _storm(sim, client, server_mac, server_ip, service, method, rng,
           done: list, gate=None):
    """The E24 storm aggressor, delayed past the calm prefix; with
    ``gate`` the slo_guard's admission hold-off throttles each send."""
    config = PATTERNS["storm"]
    args = args_for_payload(config["payload"])
    gap = 1e9 / config["rate"]

    def run():
        yield sim.timeout(STORM_DELAY_NS)
        for _ in range(config["count"]):
            if gate is not None:
                hold = gate()
                if hold:
                    yield sim.timeout(hold)
            event = client.send_request(
                server_mac, server_ip, service.udp_port,
                service.service_id, method.method_id, args,
            )
            event.add_callback(lambda ev: done.append(1))
            yield sim.timeout(rng.expovariate(1.0) * gap)

    sim.process(run(), name="e25-aggressor")
    return config["count"]


def _trim_slo_report(report: dict) -> dict:
    report = dict(report)
    report["alerts"] = report["alerts"][:32]
    return report


def _flame_summary(profile) -> dict:
    summary = {}
    for group in profile.groups():
        summary[group] = {
            "n_traces": profile.n_traces(group),
            "self_sum_ns": profile.self_sum_ns(group),
            "root_sum_ns": profile.root_sum_ns(group),
            "exact": profile.self_sum_ns(group) == profile.root_sum_ns(group),
            "stacks": {";".join(stack): weight
                       for stack, weight in sorted(
                           profile.stacks(group).items())},
        }
    return summary


def _per_request_diff(profile, group_a: str, group_b: str) -> dict:
    """Victim-vs-aggressor diff of *mean per-request* self time."""
    groups = set(profile.groups())
    if group_a not in groups or group_b not in groups:
        return {}
    n_a = max(1, profile.n_traces(group_a))
    n_b = max(1, profile.n_traces(group_b))
    a = {";".join(s): w / n_a for s, w in profile.stacks(group_a).items()}
    b = {";".join(s): w / n_b for s, w in profile.stacks(group_b).items()}
    return {stack: a.get(stack, 0.0) - b.get(stack, 0.0)
            for stack in sorted(set(a) | set(b))}


def measure_single_cell(label: str, seed: int = 0) -> SloCell:
    """One single-host cell, run unarmed then armed (identity proof),
    with SLO tracking, flame folding, and tail attribution on top."""
    n_tenants, tightness, interference, guarded = _parse_label(label)
    storm = interference == "storm"

    def drive(armed: bool):
        bed = build_lauberhorn_testbed(n_clients=4, seed=seed,
                                       preempt_on_backlog=True)
        table = _build_table(n_tenants, storm)
        bed.nic.attach_tenants(table)
        victim_service, victim_method = deploy_service(
            bed, "lauberhorn", name="victim", udp_port=9000,
            cost_instructions=VICTIM_COST, core=0, tenant="victim")
        aggr_parts = None
        if storm:
            aggr_service, aggr_method = deploy_service(
                bed, "lauberhorn", name="aggr", udp_port=9100,
                cost_instructions=PATTERNS["storm"]["cost"], core=1,
                tenant="aggressor", encrypted=PATTERNS["storm"]["encrypted"])
            aggr_parts = (aggr_service, aggr_method)
        for index in range(n_tenants - 2):
            by_service, by_method = deploy_service(
                bed, "lauberhorn", name=f"bystander{index}",
                udp_port=9200 + index, cost_instructions=VICTIM_COST,
                core=2 + index, tenant=f"bystander{index}")
            gen = OpenLoopGenerator(
                bed.clients[2 + index],
                ServiceMix([Target(by_service, by_method)]),
                bed.server_mac, bed.server_ip,
                random.Random(seed + 31 + index))
            bed.sim.process(gen.run(BYSTANDER_RATE, BYSTANDER_REQUESTS))

        obs = {}
        gate = None
        if armed:
            recorder = arm_testbed(bed)
            recorder.tag_origin = True
            flight = FlightRecorder(bed.sim, capacity=FLIGHT_CAPACITY)
            arm_flight(bed, flight, recorder=recorder)
            registry = bind_testbed_metrics(bed)
            sampler = TimeSeriesSampler(bed.sim, registry,
                                        window_ns=WINDOW_NS,
                                        max_windows=MAX_WINDOWS)
            specs = [_victim_spec(tightness)]
            if storm:
                specs.append(_aggressor_spec())
            tracker = SLOTracker(bed.sim, specs, flight=flight)
            tracker.arm(recorder=recorder, sampler=sampler,
                        registry=registry)
            checks = install_checks(bed)
            checks.flight = flight
            actuators = None
            if guarded:
                gate = AdmissionGate()
                actuators = Actuators(bed.sim, nic=bed.nic, gate=gate)
                Controller(sampler, actuators,
                           PolicySpec.from_spec(GUARD_SPEC))
            sampler.start(HORIZON_NS)
            checks.start(HORIZON_NS)
            obs = dict(recorder=recorder, flight=flight, sampler=sampler,
                       tracker=tracker, checks=checks, actuators=actuators)

        aggressor_done: list = []
        if storm:
            _storm(bed.sim, bed.clients[1], bed.server_mac, bed.server_ip,
                   aggr_parts[0], aggr_parts[1], random.Random(seed + 17),
                   aggressor_done, gate=gate)
        victim_gen = OpenLoopGenerator(
            bed.clients[0],
            ServiceMix([Target(victim_service, victim_method)]),
            bed.server_mac, bed.server_ip, random.Random(seed + 1))
        bed.sim.process(victim_gen.run(VICTIM_RATE, VICTIM_REQUESTS))
        bed.sim.run(until=HORIZON_NS)
        if armed:
            obs["sampler"].finish()
            obs["violations"] = obs["checks"].finish()
        return list(victim_gen.recorder.samples), victim_gen.completed, obs

    identical: bool | None = None
    if not guarded:
        base_rtts, _, _ = drive(armed=False)
    rtts, completed, obs = drive(armed=True)
    if not guarded:
        identical = rtts == base_rtts

    return _finish_cell("single", label, n_tenants, tightness, interference,
                        guarded, identical, VICTIM_REQUESTS, completed,
                        rtts, obs)


FLEET_VICTIM_REQUESTS = 600
FLEET_VICTIM_FLOWS = 8


def measure_fleet_cell(label: str, seed: int = 0) -> SloCell:
    """2-ToR rack, victim replicated on both hosts, storm on host 0:
    the tracker pages on the shared victim objective while the flame
    and tail groups attribute the pain to host0's replica."""
    n_tenants, tightness, interference, _ = _parse_label(
        label.replace("fleet-", "2t-"))
    storm = interference == "storm"

    def drive(armed: bool):
        fleet = build_fleet(
            [HostSpec(stack="lauberhorn", tor=0),
             HostSpec(stack="lauberhorn", tor=1)],
            topo=TopologySpec(n_tors=2),
            n_clients=2,
            seed=seed,
        )
        for host in fleet.hosts:
            host.nic.attach_tenants(_build_table(2, storm))
        host0 = fleet.hosts[0]
        aggr_parts = None
        if storm:
            aggr_service, aggr_method = deploy_service(
                host0, "lauberhorn", name="aggr", udp_port=9100,
                cost_instructions=PATTERNS["storm"]["cost"], core=1,
                tenant="aggressor", encrypted=PATTERNS["storm"]["encrypted"])
            aggr_parts = (aggr_service, aggr_method)
        fleet.deploy(name="victim", udp_port=9000,
                     cost_instructions=VICTIM_COST, tenant="victim")

        obs = {}
        if armed:
            recorder = arm_testbed(fleet)
            recorder.tag_origin = True
            flight = FlightRecorder(fleet.sim, capacity=FLIGHT_CAPACITY)
            arm_flight(fleet, flight, recorder=recorder)
            registry = bind_testbed_metrics(fleet)
            sampler = TimeSeriesSampler(fleet.sim, registry,
                                        window_ns=WINDOW_NS,
                                        max_windows=MAX_WINDOWS)
            specs = [_victim_spec(tightness)]
            if storm:
                specs.append(_aggressor_spec())
            tracker = SLOTracker(fleet.sim, specs, flight=flight)
            tracker.arm(recorder=recorder, sampler=sampler,
                        registry=registry)
            checks = install_fleet_checks(fleet)
            checks.flight = flight
            sampler.start(FLEET_HORIZON_NS)
            checks.start(FLEET_HORIZON_NS)
            obs = dict(recorder=recorder, flight=flight, sampler=sampler,
                       tracker=tracker, checks=checks, actuators=None)

        rtts: list = []
        completed: list = []

        def victim_loop():
            rng = random.Random(seed + 1)
            gap = 1e9 / VICTIM_RATE
            for k in range(FLEET_VICTIM_REQUESTS):
                event = fleet.send(fleet.clients[0],
                                   41000 + (k % FLEET_VICTIM_FLOWS), [k])

                def note(ev):
                    completed.append(1)
                    rtts.append(ev.value.rtt_ns)

                event.add_callback(note)
                yield fleet.sim.timeout(rng.expovariate(1.0) * gap)

        fleet.sim.process(victim_loop(), name="e25-fleet-victim")
        aggressor_done: list = []
        if storm:
            _storm(fleet.sim, fleet.clients[1], host0.server_mac,
                   host0.server_ip, aggr_parts[0], aggr_parts[1],
                   random.Random(seed + 17), aggressor_done)
        fleet.run(until=FLEET_HORIZON_NS)
        if armed:
            obs["sampler"].finish()
            obs["violations"] = obs["checks"].finish()
        return list(rtts), len(completed), obs

    base_rtts, _, _ = drive(armed=False)
    rtts, completed, obs = drive(armed=True)
    identical = rtts == base_rtts

    return _finish_cell("fleet", label, n_tenants, tightness, interference,
                        False, identical, FLEET_VICTIM_REQUESTS, completed,
                        rtts, obs)


def _finish_cell(section, label, n_tenants, tightness, interference,
                 guarded, identical, n_victim, completed, rtts,
                 obs) -> SloCell:
    recorder = obs["recorder"]
    tracker = obs["tracker"]
    profile = fold_spans(recorder)
    speedscope_ok = False
    if profile.groups():
        try:
            validate_speedscope(speedscope_json(profile))
            speedscope_ok = True
        except ValueError:
            speedscope_ok = False
    host = "host0"
    tail = tail_report(recorder, obs["sampler"], flight=obs["flight"],
                       quantile=TAIL_QUANTILE, max_requests=8)
    actuators = obs.get("actuators")
    return SloCell(
        section=section,
        label=label,
        n_tenants=n_tenants,
        tightness=tightness,
        interference=interference,
        guarded=guarded,
        identical=identical,
        n_victim=n_victim,
        victim_completed=completed,
        victim_p50_ns=_percentile(rtts, 0.50),
        victim_p99_ns=_percentile(rtts, 0.99),
        victim_p999_ns=_percentile(rtts, 0.999),
        slo=_trim_slo_report(tracker.report()),
        flame=_flame_summary(profile),
        flame_diff=_per_request_diff(profile, f"{host}/victim",
                                     f"{host}/aggressor"),
        speedscope_ok=speedscope_ok,
        tail_groups=tail.get("groups", {}),
        guard_actuations=len(actuators.log) if actuators else 0,
        violations=len(obs["violations"]),
        check_samples=obs["checks"].samples,
    )


def render_slo(cells: list["SloCell"]) -> None:
    titles = {
        "single": "E25 — SLO burn-rate alerting on one Lauberhorn host",
        "fleet": "E25 — 2-ToR fleet, storm on host0's victim replica",
    }
    for section in SECTIONS:
        rows = []
        for cell in cells:
            if cell.section != section:
                continue
            victim = cell.slo.get("specs", {}).get("victim", {})
            alert = victim.get("first_alert_ns")
            exhausted = victim.get("exhausted_ns")
            rows.append((
                cell.label,
                f"{cell.victim_completed}/{cell.n_victim}",
                fmt_ns(cell.victim_p999_ns),
                f"{victim.get('bad', 0)}/{victim.get('total', 0)}",
                fmt_ns(alert) if alert is not None else "-",
                fmt_ns(exhausted) if exhausted is not None else "-",
                (fmt_ns(victim["alert_lead_ns"])
                 if victim.get("alert_lead_ns") is not None else "-"),
                {True: "yes", False: "NO", None: "n/a"}[cell.identical],
                str(cell.violations),
            ))
        if rows:
            print_table(
                ["cell", "victim done", "v p99.9", "bad/total",
                 "first alert", "exhausted", "lead", "identical",
                 "violations"],
                rows,
                title=titles[section],
            )
            print()


def write_slo_artifact(cells: list["SloCell"],
                       path: str = SLO_ARTIFACT) -> dict:
    from ..exp.pool import jsonable

    payload = {
        "experiment": "e25",
        "horizon_ns": HORIZON_NS,
        "fleet_horizon_ns": FLEET_HORIZON_NS,
        "storm_delay_ns": STORM_DELAY_NS,
        "objectives": {
            "tight": _victim_spec("tight").as_dict(),
            "loose": _victim_spec("loose").as_dict(),
            "aggressor": _aggressor_spec().as_dict(),
        },
        "sections": list(SECTIONS),
        "cells": [jsonable(cell) for cell in cells],
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)
    return payload


def validate_slo_payload(payload: dict, complete: bool = True) -> None:
    """Schema/acceptance check for the E25 artifact; raises ValueError.

    The acceptance contract: every identity-eligible cell replays
    byte-identically armed vs unarmed; calm cells never alert; every
    storm cell whose (tight) victim objective is violated alerts
    strictly *before* budget exhaustion; and each flame group's folded
    self time equals its summed root durations exactly.
    """
    problems: list[str] = []
    cells = payload.get("cells")
    if not isinstance(cells, list) or not cells:
        raise ValueError("payload has no 'cells' list")
    by_key = {}
    for cell in cells:
        tag = f"{cell.get('section')}/{cell.get('label')}"
        by_key[(cell.get("section"), cell.get("label"))] = cell
        for key in ("section", "label", "slo", "flame", "identical",
                    "violations", "victim_completed"):
            if key not in cell:
                problems.append(f"{tag}: missing {key}")
        if cell.get("violations", 1) != 0:
            problems.append(
                f"{tag}: {cell.get('violations')} invariant violation(s)")
        if cell.get("victim_completed") != cell.get("n_victim"):
            problems.append(
                f"{tag}: victim completed {cell.get('victim_completed')} "
                f"of {cell.get('n_victim')}")
        if not cell.get("guarded") and cell.get("identical") is not True:
            problems.append(f"{tag}: armed run diverged from unarmed")
        if not cell.get("speedscope_ok"):
            problems.append(f"{tag}: speedscope export failed validation")
        for group, summary in cell.get("flame", {}).items():
            if summary.get("self_sum_ns") != summary.get("root_sum_ns"):
                problems.append(
                    f"{tag}: flame group {group} folded "
                    f"{summary.get('self_sum_ns')} ns != root "
                    f"{summary.get('root_sum_ns')} ns")
            if not summary.get("exact"):
                problems.append(f"{tag}: flame group {group} not exact")
        victim = cell.get("slo", {}).get("specs", {}).get("victim", {})
        n_alerts = cell.get("slo", {}).get("n_alerts", 0)
        if cell.get("interference") == "calm":
            if n_alerts != 0:
                problems.append(f"{tag}: calm cell raised {n_alerts} "
                                "alert(s)")
            if victim.get("violated"):
                problems.append(f"{tag}: calm cell exhausted its budget")
        if (cell.get("interference") == "storm"
                and cell.get("tightness") == "tight"
                and not cell.get("guarded")):
            if not victim.get("violated"):
                problems.append(f"{tag}: tight storm cell never violated "
                                "the victim objective")
            else:
                alert = victim.get("first_alert_ns")
                exhausted = victim.get("exhausted_ns")
                if alert is None:
                    problems.append(f"{tag}: objective violated but no "
                                    "burn-rate alert fired")
                elif not alert < exhausted:
                    problems.append(
                        f"{tag}: alert at {alert} ns did not precede "
                        f"exhaustion at {exhausted} ns")
        if (cell.get("interference") == "storm"
                and cell.get("tightness") == "loose"):
            if victim.get("violated"):
                problems.append(f"{tag}: loose objective violated — not "
                                "loose enough to discriminate")
            if victim.get("alerts", 0) != 0:
                problems.append(f"{tag}: loose objective alerted")
        if cell.get("interference") == "storm" and not cell.get("guarded"):
            if not cell.get("flame_diff"):
                problems.append(f"{tag}: no victim-vs-aggressor flame diff")
        if cell.get("guarded"):
            if cell.get("guard_actuations", 0) <= 0:
                problems.append(f"{tag}: slo_guard never actuated")
            if victim.get("alerts", 0) < 1:
                problems.append(f"{tag}: guard cell saw no alert to "
                                "react to")
            if victim.get("violated"):
                problems.append(f"{tag}: slo_guard failed to save the "
                                "victim's budget")
    if complete:
        wanted = {(section, label) for section in SECTIONS
                  for label in cell_labels(section)}
        missing = wanted - set(by_key)
        if missing:
            problems.append(f"missing cells: {sorted(missing)}")
        fleet_storm = by_key.get(("fleet", "fleet-tight-storm"))
        if fleet_storm:
            # cross-host attribution: the storm pounds host0 only, so
            # host0's victim replica must show a far fatter per-trace
            # flame than host1's (which stays green)
            flame = fleet_storm.get("flame", {})
            means = {}
            for host in ("host0", "host1"):
                summary = flame.get(f"{host}/victim", {})
                n = summary.get("n_traces", 0)
                means[host] = (summary.get("root_sum_ns", 0.0) / n
                               if n else 0.0)
            if means["host0"] <= 2 * means["host1"]:
                problems.append(
                    "fleet storm: flame attribution did not single out "
                    f"host0's victim replica (host0 mean {means['host0']:.0f}"
                    f" ns vs host1 {means['host1']:.0f} ns)")
    if problems:
        raise ValueError("; ".join(problems))


def run_slo(verbose: bool = True, smoke: bool = False,
            artifact_path: str = SLO_ARTIFACT) -> list[SloCell]:
    """Serial runner; ``smoke=True`` is the CI calm/storm-pair job."""
    if smoke:
        combos = [("single", "2t-tight-calm"), ("single", "2t-tight-storm")]
    else:
        combos = [(section, label) for section in SECTIONS
                  for label in cell_labels(section)]
    cells = []
    for section, label in combos:
        if section == "single":
            cells.append(measure_single_cell(label))
        else:
            cells.append(measure_fleet_cell(label))
    if verbose:
        render_slo(cells)
        payload = write_slo_artifact(cells, artifact_path)
        validate_slo_payload(payload, complete=not smoke)
        print(f"[wrote {artifact_path}: {len(payload['cells'])} cells]")
    return cells
