"""E2 — the Section 2 receive-path step breakdown (Figure 1 vs 3).

The paper enumerates the twelve things that must happen to turn a
packet into a function invocation, and argues that Lauberhorn executes
*every* step on the NIC in the common case, leaving software cost
"essentially zero".  This experiment produces that comparison two ways:

1. **analytic** — a per-step table of who performs the step and what it
   costs on each stack, straight from the calibrated cost model;
2. **measured** — per-request CPU busy time on each stack under a
   steady stream of small RPCs, which validates that the analytic
   software columns add up (within scheduling noise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..hw.params import ENZIAN, ENZIAN_PCIE, OsCostParams
from ..metrics.cycles import CycleWindow
from ..nic.lauberhorn import EndpointKind
from ..os.nicsched import USER_LOOP_SW_INSTRUCTIONS, lauberhorn_user_loop
from ..rpc.marshal import software_unmarshal_instructions
from ..rpc.server import (
    RPC_HEADER_DECODE_INSTRUCTIONS,
    USER_PARSE_INSTRUCTIONS,
    bypass_worker,
    linux_udp_worker,
)
from ..sim.clock import MS
from .report import print_table
from .testbed import (
    build_bypass_testbed,
    build_lauberhorn_testbed,
    build_linux_testbed,
)

__all__ = ["StepRow", "step_table", "run_fig1_steps", "measure_per_request_busy"]


@dataclass(frozen=True)
class StepRow:
    """One of the paper's twelve steps, across the three stacks."""

    number: int
    description: str
    linux: str
    bypass: str
    lauberhorn: str


def step_table(costs: OsCostParams = OsCostParams()) -> list[StepRow]:
    """The analytic per-step attribution.

    Software entries give instructions on the host CPU; "NIC" entries
    run in device hardware off the critical CPU path.
    """
    nic = ENZIAN.nic
    unmarshal = software_unmarshal_instructions(2, 64)

    def sw(instr) -> str:
        return f"sw {int(instr)} instr"

    def hw(ns) -> str:
        return f"NIC {ns:g} ns"

    return [
        StepRow(1, "Read the packet contents",
                hw(nic.parse_ns), hw(nic.parse_ns), hw(nic.parse_ns)),
        StepRow(2, "Protocol processing (checksums etc.)",
                hw(5), hw(5), hw(5)),
        StepRow(3, "Demultiplex to an in-memory queue / end-point",
                hw(nic.demux_ns), hw(nic.demux_ns), hw(nic.demux_ns)),
        StepRow(4, "Interrupt a core",
                f"IRQ + entry {costs.interrupt_entry_instructions} instr",
                "— (busy poll)", "— (blocked load returns)"),
        StepRow(5, "General protocol processing",
                sw(costs.softirq_instructions), sw(USER_PARSE_INSTRUCTIONS),
                "on NIC"),
        StepRow(6, "Identify the destination process",
                sw(costs.socket_rx_instructions),
                "— (static queue binding)", "on NIC (sched state)"),
        StepRow(7, "Find a core for the process",
                sw(costs.scheduler_pick_instructions),
                "— (pinned)", "on NIC (sched state)"),
        StepRow(8, "Schedule the process",
                sw(costs.socket_wakeup_instructions), "— (pinned)",
                "— (already stalled on line)"),
        StepRow(9, "Context switch",
                sw(costs.context_switch_instructions), "— (pinned)",
                "— (hot case); sw "
                f"{costs.context_switch_instructions} instr (cold)"),
        StepRow(10, "Unmarshal arguments",
                sw(unmarshal + RPC_HEADER_DECODE_INSTRUCTIONS),
                sw(unmarshal + RPC_HEADER_DECODE_INSTRUCTIONS),
                f"on NIC ({nic.deserialize_ns_per_64b:g} ns/64 B)"),
        StepRow(11, "Find the handler address",
                sw(100), sw(100), "on NIC (code ptr in CONTROL line)"),
        StepRow(12, "Jump to the handler",
                sw(USER_LOOP_SW_INSTRUCTIONS), sw(USER_LOOP_SW_INSTRUCTIONS),
                sw(USER_LOOP_SW_INSTRUCTIONS)),
    ]


def _drive(bed, service, method, n_requests: int, warmup: int = 3):
    """Run warmup, then a pipelined burst; return busy ns/request.

    The burst keeps the server continuously supplied so a busy-polling
    stack's idle spinning between requests does not pollute its
    per-request figure.
    """
    client = bed.clients[0]
    window = CycleWindow(bed.machine)
    state = {}

    def driver():
        yield bed.sim.timeout(10_000)
        for i in range(warmup):
            yield from client.call(args=[i], **bed.call_args(service, method))
        window.begin()
        events = [
            client.send_request(
                bed.server_mac, bed.server_ip, service.udp_port,
                service.service_id, method.method_id, [i],
            )
            for i in range(n_requests)
        ]
        for event in events:
            yield event
        state["cost"] = window.end(n_requests)

    bed.sim.process(driver())
    bed.machine.run(until=2000 * MS)
    return state["cost"]


def measure_per_request_busy(n_requests: int = 30, handler_cost: int = 300):
    """Measured per-request server CPU busy ns for the three stacks.

    The bypass figure excludes idle-spin time between requests (we use
    instructions retired on useful work via the busy window bracketing
    a back-to-back request train).
    """
    results = {}

    bed = build_linux_testbed()
    service = bed.registry.create_service("echo", udp_port=9000)
    method = bed.registry.add_method(
        service, "echo", lambda args: list(args), cost_instructions=handler_cost
    )
    socket = bed.netstack.bind(9000)
    process = bed.kernel.spawn_process("echo")
    bed.kernel.spawn_thread(process, linux_udp_worker(socket, bed.registry))
    results["linux"] = _drive(bed, service, method, n_requests)

    bed = build_bypass_testbed()
    service = bed.registry.create_service("echo", udp_port=9000)
    method = bed.registry.add_method(
        service, "echo", lambda args: list(args), cost_instructions=handler_cost
    )
    process = bed.kernel.spawn_process("echo")
    bed.kernel.spawn_thread(
        process,
        bypass_worker(bed.nic, bed.nic.queues[0], bed.user_netctx, bed.registry),
        pinned_core=0,
    )
    bed.nic.steer_port(9000, 0)
    results["bypass"] = _drive(bed, service, method, n_requests)

    bed = build_lauberhorn_testbed()
    service = bed.registry.create_service("echo", udp_port=9000)
    method = bed.registry.add_method(
        service, "echo", lambda args: list(args), cost_instructions=handler_cost
    )
    process = bed.kernel.spawn_process("echo")
    bed.nic.register_service(service, process.pid)
    endpoint = bed.nic.create_endpoint(EndpointKind.USER, service=service)
    bed.kernel.spawn_thread(
        process,
        lauberhorn_user_loop(bed.nic, endpoint, bed.registry),
        pinned_core=0,
    )
    results["lauberhorn"] = _drive(bed, service, method, n_requests)

    return results


def run_fig1_steps(verbose: bool = True, n_requests: int = 30):
    """Regenerate the step table plus measured per-request software cost."""
    rows = step_table()
    measured = measure_per_request_busy(n_requests=n_requests)
    if verbose:
        print_table(
            ["#", "step", "Linux/DMA NIC", "kernel bypass", "Lauberhorn"],
            [(r.number, r.description, r.linux, r.bypass, r.lauberhorn)
             for r in rows],
            title="Section 2 — receive-path steps by stack",
        )
        print_table(
            ["stack", "busy ns/req", "instructions/req"],
            [
                (name, f"{cost.busy_ns_per_request:.0f}",
                 f"{cost.instructions_per_request:.0f}")
                for name, cost in measured.items()
            ],
            title="Measured per-request server CPU cost (small RPC, "
                  "handler excluded from comparison is identical)",
        )
    return rows, measured
