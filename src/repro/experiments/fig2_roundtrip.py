"""E1 — Figure 2: 64-byte message round-trip latencies.

The paper's only measured plot: the CPU<->NIC interaction latency for a
64 B message, comparing the coherent ECI path against DMA-over-PCIe on
the same machine (Enzian) and on a modern PC server.  "Figure 2 shows
the dramatically better interaction latency possible using even the
(comparatively slow) ECI vs. DMA over PCIe."

We reproduce it as microbenchmarks of the raw mechanisms:

* **coherent** (ECI / CXL 3.0): the CPU writes the message into a
  device-homed line it owns (local), then issues a blocked load on the
  response line; the device recalls the request line and answers the
  fill — the protocol of [21]/Figure 4, with an immediately-available
  response.
* **DMA** (PCIe Gen3 / Gen5): the CPU writes a descriptor, rings a
  doorbell (posted MMIO); the device DMA-reads descriptor + 64 B
  message, then DMA-writes a 64 B response + completion; the CPU
  polls the completion word in DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.coherence import FillResponse, HomeDevice
from ..hw.machine import Machine
from ..hw.params import (
    ENZIAN,
    ENZIAN_PCIE,
    MODERN_SERVER,
    MODERN_SERVER_CXL,
    MachineParams,
)
from ..sim.engine import Event
from .report import fmt_ns, print_table

__all__ = ["RoundTripResult", "run_fig2", "coherent_roundtrip_ns",
           "dma_roundtrip_ns"]

MESSAGE_BYTES = 64


@dataclass(frozen=True)
class RoundTripResult:
    """One bar of Figure 2."""

    label: str
    mechanism: str
    round_trip_ns: float


class _PingDevice(HomeDevice):
    """A device home answering response-line loads after a fixed
    processing delay (the request arrives via a posted line write)."""

    def __init__(self, machine: Machine, request_addr: int, process_ns: float = 50.0):
        self.machine = machine
        self.sim = machine.sim
        self.fabric = machine.fabric
        self.request_addr = request_addr
        self.process_ns = process_ns
        self.requests_seen = 0

    def on_writeback(self, addr: int, data: bytes) -> None:
        if addr == self.request_addr:
            self.requests_seen += 1

    def service_fill(self, core_id: int, addr: int, for_write: bool) -> Event:
        event = Event(self.sim)
        if addr == self.request_addr:
            event.succeed(FillResponse(data=b""))
            return event

        def respond():
            yield self.sim.timeout(self.process_ns)
            event.succeed(FillResponse(data=b"\x01" * MESSAGE_BYTES))

        self.sim.process(respond())
        return event


def coherent_roundtrip_ns(params: MachineParams, n: int = 8) -> float:
    """Mean steady-state coherent-path round trip."""
    machine = Machine(params)
    line = machine.fabric.line_bytes
    from ..hw.address import Region

    region = machine.alloc.allocate(2 * line, "ping")
    request_addr, response_addr = region.base, region.base + line
    device = _PingDevice(machine, request_addr)
    machine.fabric.register_home(Region(request_addr, 2 * line, "ping"), device)
    core = machine.cores[0]
    samples: list[float] = []

    def cpu():
        for index in range(n):
            start = machine.sim.now
            # Push the 64 B message with a write-combining store — no
            # ownership round trip ([21]'s CPU->device direction).
            yield from core.posted_store_line(
                request_addr, b"\x42" * MESSAGE_BYTES
            )
            # Blocked load on the response line.
            yield from core.load_line(response_addr)
            samples.append(machine.sim.now - start)
            # Release the response line so the next load misses.
            yield from core.evict_line(response_addr)

    machine.sim.process(cpu())
    machine.run()
    # Skip the cold first iteration (write-allocate of the request line).
    steady = samples[1:] or samples
    return sum(steady) / len(steady)


def dma_roundtrip_ns(params: MachineParams, n: int = 8) -> float:
    """Mean DMA-descriptor-path round trip with CPU completion polling."""
    machine = Machine(params)
    link = machine.link
    nic_params = params.nic
    core = machine.cores[0]
    samples: list[float] = []

    def one_roundtrip():
        start = machine.sim.now
        # Driver: write descriptor (cached memory) + payload staging.
        yield from core.execute(60)
        # Doorbell (posted MMIO write).
        yield from link.mmio_write(core)
        yield machine.sim.timeout(link.posted_delay_ns())
        # Device: fetch descriptor, fetch message.
        yield from link.dma_read(nic_params.descriptor_bytes)
        yield from link.dma_read(MESSAGE_BYTES)
        yield machine.sim.timeout(nic_params.descriptor_process_ns)
        # Device: write response + completion descriptor.
        yield from link.dma_write(MESSAGE_BYTES)
        yield from link.dma_write(nic_params.descriptor_bytes)
        # CPU: poll the completion word (one DRAM miss when it lands),
        # then read the response from DRAM.
        yield from core.dram_access()
        yield from core.dram_access()
        samples.append(machine.sim.now - start)

    def cpu():
        for _ in range(n):
            yield from one_roundtrip()

    machine.sim.process(cpu())
    machine.run()
    return sum(samples) / len(samples)


def run_fig2(verbose: bool = True) -> list[RoundTripResult]:
    """Regenerate Figure 2's bars (plus the CXL 3.0 projection)."""
    results = [
        RoundTripResult(
            "Enzian / ECI (coherent)", "coherent",
            coherent_roundtrip_ns(ENZIAN),
        ),
        RoundTripResult(
            "Enzian / PCIe Gen3 DMA", "dma",
            dma_roundtrip_ns(ENZIAN_PCIE),
        ),
        RoundTripResult(
            "Modern server / PCIe Gen5 DMA", "dma",
            dma_roundtrip_ns(MODERN_SERVER),
        ),
        RoundTripResult(
            "Modern server / CXL 3.0 (coherent, projected)", "coherent",
            coherent_roundtrip_ns(MODERN_SERVER_CXL),
        ),
    ]
    if verbose:
        print_table(
            ["configuration", "mechanism", "64 B round trip"],
            [(r.label, r.mechanism, fmt_ns(r.round_trip_ns)) for r in results],
            title="Figure 2 — 64-byte message round-trip latencies",
        )
    return results
