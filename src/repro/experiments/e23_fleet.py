"""E23 — rack-scale fleets: replica scaling, skew, and NIC placement.

The paper's pitch is a datacenter argument made on one machine; E23 is
the first experiment that actually runs a *rack*: N hosts behind a
ToR/spine topology (:mod:`repro.fleet`), a deterministic ECMP/RSS
balancer spreading flows over service replicas, and the fleet-wide
invariant battery (:func:`repro.check.install_fleet_checks`) armed in
every cell — packet conservation across every switch port, intra-flow
delivery order, and the balancer-vs-replica ledger all must hold for a
cell to count.

Three sections:

* **scaling** — the same flow population against 1/2/4 Lauberhorn
  replicas split across two racks: replica-count scaling curves;
* **skew** — a Zipf(α) hot-key sweep over 4 replicas: how flow-affine
  hashing copes when the flow population is skewed (α = 0 uniform up
  to α = 1.5 heavily skewed);
* **placement** — "which hosts get the coherent NIC": the same
  workload over placements from no Lauberhorn at all, one host, both
  coherent hosts in one rack, split across racks, everywhere, and a
  heterogeneous linux/snap/bypass/lauberhorn mix.

Artifact: ``results/e23_fleet.json`` (schema-checked by
:func:`validate_fleet_payload`).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from ..check import install_fleet_checks
from ..fleet import Fleet, HostSpec, build_fleet
from ..net.topology import TopologySpec
from ..sim.clock import MS
from .report import fmt_ns, print_table

__all__ = ["FleetCell", "FLEET_ARTIFACT", "SCALING_LABELS", "SKEW_LABELS",
           "PLACEMENT_LABELS", "cell_labels", "measure_fleet_cell",
           "render_fleet", "write_fleet_artifact", "validate_fleet_payload",
           "run_fleet"]

#: default location of the JSON artifact (relative to the runner's cwd)
FLEET_ARTIFACT = "results/e23_fleet.json"

HORIZON_NS = 200 * MS
N_TORS = 2
N_CLIENTS = 2
#: echo handler cost, matching the four-stacks workload
HANDLER_COST = 500

#: replica-count scaling points (all-Lauberhorn, round-robin racks)
SCALING_LABELS = ("r1", "r2", "r4")
_SCALING_REPLICAS = {"r1": 1, "r2": 2, "r4": 4}

#: Zipf skew sweep over 4 Lauberhorn replicas
SKEW_LABELS = ("a0.0", "a0.9", "a1.5")
_SKEW_ALPHA = {"a0.0": 0.0, "a0.9": 0.9, "a1.5": 1.5}

#: "which hosts get the coherent NIC" — 4 hosts, 2 racks
PLACEMENT_LABELS = ("none", "one", "same_rack", "split", "all", "mixed")
_PLACEMENTS: dict[str, tuple[tuple[str, ...], tuple[int, ...]]] = {
    "none": (("linux", "linux", "linux", "linux"), (0, 1, 0, 1)),
    "one": (("lauberhorn", "linux", "linux", "linux"), (0, 1, 0, 1)),
    "same_rack": (("lauberhorn", "lauberhorn", "linux", "linux"),
                  (0, 0, 1, 1)),
    "split": (("lauberhorn", "linux", "lauberhorn", "linux"), (0, 0, 1, 1)),
    "all": (("lauberhorn", "lauberhorn", "lauberhorn", "lauberhorn"),
            (0, 1, 0, 1)),
    "mixed": (("linux", "snap", "bypass", "lauberhorn"), (0, 0, 1, 1)),
}

SECTIONS = ("scaling", "skew", "placement")


def cell_labels(section: str) -> tuple[str, ...]:
    return {
        "scaling": SCALING_LABELS,
        "skew": SKEW_LABELS,
        "placement": PLACEMENT_LABELS,
    }[section]


@dataclass(frozen=True)
class FleetCell:
    """One measured fleet configuration (JSON-able)."""

    section: str
    label: str
    stacks: list
    tors: list
    n_flows: int
    n_requests: int
    completed: int
    p50_rtt_ns: float
    p99_rtt_ns: float
    mean_rtt_ns: float
    #: requests the balancer routed to each replica, in host order
    routed: list = field(default_factory=list)
    flows_per_replica: list = field(default_factory=list)
    #: max/mean of ``routed`` (1.0 = perfectly even; 0 = no traffic)
    imbalance: float = 0.0
    #: flows whose replica sits in a different rack than the clients
    cross_rack_flows: int = 0
    #: fleet invariant violations recorded over the run (must be 0)
    violations: int = 0
    #: invariant sampler sweeps that ran
    check_samples: int = 0


def _cell_config(section: str, label: str) -> dict:
    """Declarative cell table -> concrete workload parameters."""
    if section == "scaling":
        n = _SCALING_REPLICAS[label]
        return dict(
            stacks=["lauberhorn"] * n,
            tors=[i % N_TORS for i in range(n)],
            n_flows=16, total_requests=128, alpha=0.0,
        )
    if section == "skew":
        return dict(
            stacks=["lauberhorn"] * 4,
            tors=[i % N_TORS for i in range(4)],
            n_flows=32, total_requests=160, alpha=_SKEW_ALPHA[label],
        )
    if section == "placement":
        stacks, tors = _PLACEMENTS[label]
        return dict(
            stacks=list(stacks), tors=list(tors),
            n_flows=16, total_requests=96, alpha=0.0,
        )
    raise ValueError(f"unknown section {section!r}")


def _flow_requests(n_flows: int, total: int, alpha: float) -> list[int]:
    """Split ``total`` requests over flows with Zipf(alpha) weights."""
    weights = [1.0 / (flow + 1) ** alpha for flow in range(n_flows)]
    scale = total / sum(weights)
    counts = [max(1, round(weight * scale)) for weight in weights]
    # Trim rounding overshoot from the tail so totals stay comparable.
    index = n_flows - 1
    while sum(counts) > total and index >= 0:
        if counts[index] > 1:
            counts[index] -= 1
        else:
            index -= 1
    return counts


def _drive(fleet: Fleet, counts: list[int]) -> list[float]:
    """Closed-loop per flow: flow ``f`` sends ``counts[f]`` requests
    back-to-back from client ``f % n_clients`` on port ``41000 + f``."""
    rtts: list[float] = []

    def flow_loop(flow: int, n: int):
        client = fleet.clients[flow % len(fleet.clients)]
        yield fleet.sim.timeout(10_000)
        for k in range(n):
            result = yield fleet.send(client, 41000 + flow, [k])
            rtts.append(result.rtt_ns)

    for flow, n in enumerate(counts):
        fleet.sim.process(flow_loop(flow, n), name=f"e23-flow{flow}")
    fleet.run(until=HORIZON_NS)
    return rtts


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def measure_fleet_cell(section: str, label: str, seed: int = 0) -> FleetCell:
    """Build, invariant-arm, and drive one fleet configuration."""
    config = _cell_config(section, label)
    stacks, tors = config["stacks"], config["tors"]
    fleet = build_fleet(
        [HostSpec(stack=stack, tor=tor) for stack, tor in zip(stacks, tors)],
        topo=TopologySpec(n_tors=N_TORS),
        n_clients=N_CLIENTS,
        seed=seed,
    )
    fleet.deploy(cost_instructions=HANDLER_COST)
    checks = install_fleet_checks(fleet)
    checks.start(HORIZON_NS)
    counts = _flow_requests(config["n_flows"], config["total_requests"],
                            config["alpha"])
    rtts = _drive(fleet, counts)
    checks.finish()
    spread = fleet.balancer.spread()
    routed = spread["routed"]
    mean_routed = sum(routed) / len(routed) if routed else 0.0
    cross = sum(
        1 for index in fleet.balancer.affinity.values()
        if fleet.deployments[index].host.tor != 0
    )
    return FleetCell(
        section=section,
        label=label,
        stacks=list(stacks),
        tors=list(tors),
        n_flows=config["n_flows"],
        n_requests=sum(counts),
        completed=len(rtts),
        p50_rtt_ns=_percentile(rtts, 0.50),
        p99_rtt_ns=_percentile(rtts, 0.99),
        mean_rtt_ns=sum(rtts) / len(rtts) if rtts else 0.0,
        routed=routed,
        flows_per_replica=spread["flows_per_replica"],
        imbalance=(max(routed) / mean_routed if mean_routed else 0.0),
        cross_rack_flows=cross,
        violations=len(checks.violations),
        check_samples=checks.samples,
    )


def render_fleet(cells: list["FleetCell"]) -> None:
    titles = {
        "scaling": "E23 — replica-count scaling (Lauberhorn, 2 racks)",
        "skew": "E23 — Zipf hot-key sweep over 4 replicas",
        "placement": "E23 — coherent-NIC placement grid (4 hosts, 2 racks)",
    }
    for section in SECTIONS:
        rows = []
        for cell in cells:
            if cell.section != section:
                continue
            rows.append((
                cell.label,
                "/".join(sorted(set(cell.stacks),
                                key=cell.stacks.index)),
                f"{cell.completed}/{cell.n_requests}",
                fmt_ns(cell.p50_rtt_ns),
                fmt_ns(cell.p99_rtt_ns),
                f"{cell.imbalance:.2f}",
                str(cell.cross_rack_flows),
                str(cell.violations),
            ))
        if rows:
            print_table(
                ["cell", "stacks", "done", "p50 RTT", "p99 RTT",
                 "imbalance", "x-rack", "violations"],
                rows,
                title=titles[section],
            )
            print()


def write_fleet_artifact(cells: list["FleetCell"],
                         path: str = FLEET_ARTIFACT) -> dict:
    from ..exp.pool import jsonable

    payload = {
        "experiment": "e23",
        "horizon_ns": HORIZON_NS,
        "n_tors": N_TORS,
        "sections": list(SECTIONS),
        "cells": [jsonable(cell) for cell in cells],
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)
    return payload


def validate_fleet_payload(payload: dict, complete: bool = True) -> None:
    """Schema/acceptance check for the E23 artifact; raises ValueError.

    What the tentpole promises: every cell ran its full request count
    with **zero** fleet-invariant violations; the balancer's ledger is
    present and sums to the completed requests; and (``complete=True``)
    the grid covers every section's labels and the placement section
    shows the coherent NIC earning its keep (``all`` beats ``none`` on
    median RTT).
    """
    problems: list[str] = []
    cells = payload.get("cells")
    if not isinstance(cells, list) or not cells:
        raise ValueError("payload has no 'cells' list")
    seen = set()
    by_key = {}
    for cell in cells:
        tag = f"{cell.get('section')}/{cell.get('label')}"
        seen.add((cell.get("section"), cell.get("label")))
        by_key[(cell.get("section"), cell.get("label"))] = cell
        for key in ("section", "label", "stacks", "completed",
                    "p50_rtt_ns", "routed", "violations"):
            if key not in cell:
                problems.append(f"{tag}: missing {key}")
        if cell.get("violations", 1) != 0:
            problems.append(
                f"{tag}: {cell.get('violations')} invariant violation(s)")
        if cell.get("completed") != cell.get("n_requests"):
            problems.append(
                f"{tag}: completed {cell.get('completed')} of "
                f"{cell.get('n_requests')} requests")
        routed = cell.get("routed", [])
        if sum(routed) != cell.get("completed"):
            problems.append(
                f"{tag}: balancer routed {sum(routed)} != completed "
                f"{cell.get('completed')}")
        if len(routed) != len(cell.get("stacks", [])):
            problems.append(f"{tag}: ledger covers {len(routed)} replicas "
                            f"for {len(cell.get('stacks', []))} hosts")
    if complete:
        wanted = {(section, label) for section in SECTIONS
                  for label in cell_labels(section)}
        missing = wanted - seen
        if missing:
            problems.append(f"missing cells: {sorted(missing)}")
        all_cell = by_key.get(("placement", "all"))
        none_cell = by_key.get(("placement", "none"))
        if all_cell and none_cell:
            if all_cell["p50_rtt_ns"] >= none_cell["p50_rtt_ns"]:
                problems.append(
                    "placement: all-Lauberhorn p50 "
                    f"({all_cell['p50_rtt_ns']:.0f} ns) does not beat "
                    f"all-kernel ({none_cell['p50_rtt_ns']:.0f} ns)")
    if problems:
        raise ValueError("; ".join(problems))


def run_fleet(verbose: bool = True, smoke: bool = False,
              artifact_path: str = FLEET_ARTIFACT) -> list[FleetCell]:
    """Serial runner; ``smoke=True`` is the CI one-cell-per-section job."""
    if smoke:
        combos = [("scaling", "r2"), ("placement", "mixed")]
    else:
        combos = [(section, label) for section in SECTIONS
                  for label in cell_labels(section)]
    cells = [measure_fleet_cell(section, label)
             for section, label in combos]
    if verbose:
        render_fleet(cells)
        payload = write_fleet_artifact(cells, artifact_path)
        validate_fleet_payload(payload, complete=not smoke)
        print(f"[wrote {artifact_path}: {len(payload['cells'])} cells]")
    return cells
