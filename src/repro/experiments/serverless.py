"""E17 — serverless consolidation: many cold functions, few cores.

The paper's motivating workload class: "data center microservices or
serverless function invocations" with "many more end-points than spare
cores".  This experiment replays a synthetic Zipf-popular, bursty
invocation trace over N functions onto a machine with a small set of
serving cores, comparing:

* **linux** — one blocking worker per function (threads are cheap to
  park, the per-invocation stack cost is not);
* **lauberhorn** — end-points per function, NIC-driven dispatchers
  with promotion: hot functions settle onto the fast path, cold ones
  pay one kernel dispatch.

Reported: invocation latency percentiles, serving-core CPU per
invocation, and (for Lauberhorn) the telemetry ring's cold-dispatch
fraction — how often the NIC had to fall back to the kernel.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..nic.lauberhorn import EndpointKind
from ..os.nicsched import NicScheduler
from ..rpc.server import linux_udp_worker
from ..sim.clock import MS
from ..workloads.generator import Target
from ..workloads.trace_replay import TraceReplayer, generate_trace
from .report import fmt_ns, print_table
from .testbed import build_lauberhorn_testbed, build_linux_testbed

__all__ = ["ServerlessResult", "measure_serverless_stack",
           "render_serverless", "run_serverless"]

HANDLER_COST = 2000  # a small function body
BASE_PORT = 9000


@dataclass(frozen=True)
class ServerlessResult:
    stack: str
    n_functions: int
    invocations: int
    p50_ns: float
    p99_ns: float
    busy_ns_per_invocation: float
    kernel_dispatch_fraction: float


def _targets(bed, n_functions: int) -> list[Target]:
    targets = []
    for index in range(n_functions):
        service = bed.registry.create_service(
            f"fn{index}", udp_port=BASE_PORT + index
        )
        method = bed.registry.add_method(
            service, "invoke", lambda args: ["ok"],
            cost_instructions=HANDLER_COST,
        )
        targets.append(Target(service, method))
    return targets


def _replay(bed, targets, trace, n_serving: int):
    replayer = TraceReplayer(
        bed.clients[0], targets, bed.server_mac, bed.server_ip
    )
    busy_before = sum(
        bed.machine.cores[c].counters.busy_ns for c in range(n_serving)
    )
    done = bed.sim.process(replayer.run(trace, random.Random(0)))
    bed.machine.run(until=done)
    busy_after = sum(
        bed.machine.cores[c].counters.busy_ns for c in range(n_serving)
    )
    summary = replayer.recorder.summary()
    per_invocation = (busy_after - busy_before) / max(1, replayer.completed)
    return replayer, summary, per_invocation


def measure_serverless_stack(
    stack: str,
    n_functions: int = 24,
    n_serving: int = 4,
    duration_ms: float = 8.0,
    rate_per_sec: float = 30_000,
    seed: int = 0,
) -> ServerlessResult:
    """One point: replay the (seed-determined) trace against one stack."""
    trace = generate_trace(
        n_targets=n_functions,
        duration_ns=duration_ms * MS,
        mean_rate_per_sec=rate_per_sec,
        seed=seed,
    )
    if stack == "linux":
        bed = build_linux_testbed(n_queues=n_serving)
        targets = _targets(bed, n_functions)
        for index, target in enumerate(targets):
            socket = bed.netstack.bind(target.service.udp_port)
            process = bed.kernel.spawn_process(f"fn{index}")
            bed.kernel.spawn_thread(
                process, linux_udp_worker(socket, bed.registry),
                pinned_core=index % n_serving,
            )
        replayer, summary, per_invocation = _replay(
            bed, targets, trace, n_serving
        )
        return ServerlessResult(
            "linux", n_functions, replayer.completed, summary.p50,
            summary.p99, per_invocation, 1.0,
        )
    if stack == "lauberhorn":
        bed = build_lauberhorn_testbed()
        targets = _targets(bed, n_functions)
        for index, target in enumerate(targets):
            process = bed.kernel.spawn_process(f"fn{index}")
            bed.nic.register_service(target.service, process.pid)
            bed.nic.create_endpoint(EndpointKind.USER, service=target.service)
        NicScheduler(
            bed.kernel, bed.nic, bed.registry,
            n_dispatchers=n_serving, promote=True,
            dispatcher_cores=list(range(n_serving)),
        )
        replayer, summary, per_invocation = _replay(
            bed, targets, trace, n_serving
        )
        return ServerlessResult(
            "lauberhorn", n_functions, replayer.completed, summary.p50,
            summary.p99, per_invocation,
            bed.nic.telemetry.kernel_dispatch_fraction(),
        )
    raise ValueError(f"unknown stack {stack!r}")


def run_serverless(
    n_functions: int = 24,
    n_serving: int = 4,
    duration_ms: float = 8.0,
    rate_per_sec: float = 30_000,
    seed: int = 0,
    verbose: bool = True,
) -> list[ServerlessResult]:
    results = [
        measure_serverless_stack(stack, n_functions, n_serving, duration_ms,
                                 rate_per_sec, seed)
        for stack in ("linux", "lauberhorn")
    ]
    if verbose:
        render_serverless(results, n_serving)
    return results


def render_serverless(
    results: list[ServerlessResult], n_serving: int = 4
) -> None:
    n_functions = results[0].n_functions if results else 0
    print_table(
        ["stack", "functions", "invocations", "p50", "p99",
         "busy/invoke", "cold-dispatch frac"],
        [
            (r.stack, r.n_functions, r.invocations, fmt_ns(r.p50_ns),
             fmt_ns(r.p99_ns), fmt_ns(r.busy_ns_per_invocation),
             f"{r.kernel_dispatch_fraction:.2f}")
            for r in results
        ],
        title=f"Serverless consolidation — {n_functions} functions, "
              f"{n_serving} serving cores, Zipf+bursty trace",
    )
