"""E4 — the headline trade-off: static vs dynamic workloads.

Sections 1/4: kernel bypass wins on "relatively static" workloads by
pinning processes to cores and queues, but "when the workload is
dynamic with many more end-points than spare cores, the up-front cost
of mapping the NIC's demultiplexing to queues onto the scheduling of
applications on cores quickly becomes cumbersome".  Lauberhorn claims
*both*: bypass-beating latency when stable, kernel-like adaptation when
not.

Setup: ``n_serving`` cores are available for RPC work; ``n_services``
services exist; every ``rotation_ns`` a fresh hot set of
``min(n_serving, n_services)`` services receives all the traffic
(open-loop Poisson).  Three stacks serve it:

* **linux** — one blocking worker per service, workers pinned
  round-robin over the serving cores;
* **bypass** — one queue per service, ``n_serving`` pinned PMD workers
  each sweeping ``n_services / n_serving`` queues;
* **lauberhorn** — one user end-point per service (no dedicated
  threads), ``n_serving`` kernel dispatchers with promotion and
  NIC-initiated preemption.

Reported per (stack, n_services): p50/p99 latency, completed count, and
serving-core CPU busy per request (the energy proxy).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nic.lauberhorn import EndpointKind
from ..os.nicsched import NicScheduler
from ..rpc.server import bypass_worker, linux_udp_worker
from ..sim.clock import MS
from ..workloads.generator import OpenLoopGenerator, ServiceMix, Target
from ..workloads.traces import HotSetSchedule
from .report import fmt_ns, print_table
from .testbed import (
    build_bypass_testbed,
    build_lauberhorn_testbed,
    build_linux_testbed,
)

__all__ = ["MixResult", "measure_mix_point", "render_dynamic_mix",
           "run_dynamic_mix"]

HANDLER_COST = 1000
BASE_PORT = 9000


@dataclass(frozen=True)
class MixResult:
    stack: str
    n_services: int
    completed: int
    p50_ns: float
    p99_ns: float
    busy_ns_per_request: float


def _make_services(bed, n_services: int):
    targets = []
    for index in range(n_services):
        service = bed.registry.create_service(
            f"svc{index}", udp_port=BASE_PORT + index
        )
        method = bed.registry.add_method(
            service, "work", lambda args: [args[0]],
            cost_instructions=HANDLER_COST,
        )
        targets.append(Target(service=service, method=method,
                              make_args=lambda rng: [1]))
    return targets


def _run_load(bed, targets, n_serving: int, rate_per_sec: float,
              n_requests: int, rotation_ns: float, seed: int):
    """Drive the rotating-hot-set load; returns (recorder, busy/req)."""
    mix = ServiceMix([t for t in targets])
    schedule = HotSetSchedule(
        n_services=len(targets),
        hot_count=min(n_serving, len(targets)),
        period_ns=rotation_ns,
        seed=seed,
    )
    mix.set_hot_set(schedule.hot_set_at(0))

    def rotator():
        while True:
            yield bed.sim.timeout(rotation_ns)
            mix.set_hot_set(schedule.hot_set_at(bed.sim.now))

    bed.sim.process(rotator())
    generator = OpenLoopGenerator(
        bed.clients[0], mix, bed.server_mac, bed.server_ip,
        rng=bed.machine.rng.stream("dynamic-mix"),
    )
    busy_before = sum(
        bed.machine.cores[c].counters.busy_ns for c in range(n_serving)
    )
    done = bed.sim.process(
        generator.run(rate_per_sec=rate_per_sec, n_requests=n_requests)
    )
    bed.machine.run(until=done)
    busy_after = sum(
        bed.machine.cores[c].counters.busy_ns for c in range(n_serving)
    )
    per_request = (busy_after - busy_before) / max(1, generator.completed)
    return generator, per_request


def _build_stack(stack: str, n_services: int, n_serving: int):
    """A fresh testbed + service targets for one (stack, n_services)."""
    if stack == "linux":
        bed = build_linux_testbed(n_queues=n_serving)
        targets = _make_services(bed, n_services)
        for index, target in enumerate(targets):
            socket = bed.netstack.bind(target.service.udp_port)
            process = bed.kernel.spawn_process(f"svc{index}")
            bed.kernel.spawn_thread(
                process,
                linux_udp_worker(socket, bed.registry),
                pinned_core=index % n_serving,
            )
        return bed, targets
    if stack == "bypass":
        bed = build_bypass_testbed(n_queues=n_services)
        targets = _make_services(bed, n_services)
        for index, target in enumerate(targets):
            bed.nic.steer_port(target.service.udp_port, index)
        process = bed.kernel.spawn_process("pmd")
        for worker in range(n_serving):
            queues = [bed.nic.queues[q] for q in
                      range(worker, n_services, n_serving)]
            if not queues:
                continue
            bed.kernel.spawn_thread(
                process,
                bypass_worker(bed.nic, queues, bed.user_netctx, bed.registry),
                pinned_core=worker,
            )
        return bed, targets
    if stack == "lauberhorn":
        bed = build_lauberhorn_testbed()
        targets = _make_services(bed, n_services)
        for index, target in enumerate(targets):
            process = bed.kernel.spawn_process(f"svc{index}")
            bed.nic.register_service(target.service, process.pid)
            bed.nic.create_endpoint(EndpointKind.USER, service=target.service)
        NicScheduler(
            bed.kernel, bed.nic, bed.registry,
            n_dispatchers=n_serving, promote=True,
            dispatcher_cores=list(range(n_serving)),
        )
        return bed, targets
    raise ValueError(f"unknown stack {stack!r}")


def measure_mix_point(
    stack: str,
    n_services: int,
    n_serving: int = 4,
    rate_per_sec: float = 50_000,
    n_requests: int = 300,
    rotation_ns: float = 2 * MS,
    seed: int = 0,
) -> MixResult:
    """One sweep point: one stack serving one service count."""
    bed, targets = _build_stack(stack, n_services, n_serving)
    generator, busy = _run_load(
        bed, targets, n_serving, rate_per_sec, n_requests, rotation_ns, seed
    )
    summary = generator.recorder.summary()
    return MixResult(stack, n_services, generator.completed,
                     summary.p50, summary.p99, busy)


def render_dynamic_mix(
    results: list[MixResult],
    n_serving: int = 4,
    rate_per_sec: float = 50_000,
) -> None:
    print_table(
        ["stack", "services", "completed", "p50", "p99", "busy/req"],
        [
            (r.stack, r.n_services, r.completed, fmt_ns(r.p50_ns),
             fmt_ns(r.p99_ns), fmt_ns(r.busy_ns_per_request))
            for r in results
        ],
        title="Dynamic workloads — rotating hot set over "
              f"{n_serving} serving cores (open loop, "
              f"{rate_per_sec:.0f}/s)",
    )


def run_dynamic_mix(
    service_counts=(2, 8, 32),
    n_serving: int = 4,
    rate_per_sec: float = 50_000,
    n_requests: int = 300,
    rotation_ns: float = 2 * MS,
    seed: int = 0,
    verbose: bool = True,
) -> list[MixResult]:
    results = [
        measure_mix_point(stack, n_services, n_serving, rate_per_sec,
                          n_requests, rotation_ns, seed)
        for n_services in service_counts
        for stack in ("linux", "bypass", "lauberhorn")
    ]
    if verbose:
        render_dynamic_mix(results, n_serving, rate_per_sec)
    return results
