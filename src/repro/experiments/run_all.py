"""Run every experiment (E1-E18) and print the paper-shaped output.

Usage::

    python -m repro.experiments.run_all                   # everything
    python -m repro.experiments.run_all e1 e5 e7          # a subset
    python -m repro.experiments.run_all --json out.json   # + raw results

The printed tables are the reproduction's equivalents of the paper's
figures; EXPERIMENTS.md records a captured run next to the paper's own
numbers.  ``--json`` additionally dumps every experiment's structured
results (dataclasses, recursively serialised) for downstream tooling.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time

from .ablation import run_crypto_ablation, run_deserialize_ablation
from .crossover import run_crossover
from .dynamic_mix import run_dynamic_mix
from .fig1_steps import run_fig1_steps
from .fig2_roundtrip import run_fig2
from .fig5_dispatch import run_fig5_dispatch
from .four_stacks import run_four_stacks
from .iommu_tax import run_iommu_tax
from .load_sweep import run_load_sweep
from .model_check import run_model_check
from .nested_rpc import run_nested_rpc
from .protocol_cost import run_protocol_cost
from .sched_state import run_sched_state
from .sensitivity import run_sensitivity
from .serverless import run_serverless
from .telemetry_breakdown import run_telemetry_breakdown
from .throughput import run_lauberhorn_scaling, run_throughput
from .tryagain import run_timeout_ablation, run_tryagain_energy

__all__ = ["EXPERIMENTS", "main"]

EXPERIMENTS = {
    "e1": ("Figure 2 — 64 B round-trip latencies", lambda: run_fig2()),
    "e2": ("Section 2 — receive-path steps", lambda: run_fig1_steps()),
    "e3": ("Figure 5 — dispatch comparison", lambda: run_fig5_dispatch()),
    "e4": ("Dynamic workload mix", lambda: run_dynamic_mix()),
    "e5": ("Section 6 — DMA crossover", lambda: run_crossover()),
    "e6": ("Section 5.1 — Tryagain & energy",
           lambda: (run_tryagain_energy(), run_timeout_ablation())),
    "e7": ("Section 6 — model checking", lambda: run_model_check()),
    "e8": ("Section 5.2 — sched-state push", lambda: run_sched_state()),
    "e9": ("Section 6 — nested RPCs", lambda: run_nested_rpc()),
    "e10": ("Figure 4 — protocol cost", lambda: run_protocol_cost()),
    "e11": ("Section 2 design space — four stacks", lambda: run_four_stacks()),
    "e12": ("Ablations — deserialisation offload & crypto placement",
            lambda: (run_deserialize_ablation(), run_crypto_ablation())),
    "e13": ("Section 6 — NIC telemetry breakdown",
            lambda: run_telemetry_breakdown()),
    "e14": ("Peak throughput & end-point scaling",
            lambda: (run_throughput(), run_lauberhorn_scaling())),
    "e15": ("Latency vs offered load", lambda: run_load_sweep()),
    "e16": ("Section 3 — the IOMMU tax", lambda: run_iommu_tax()),
    "e17": ("Serverless consolidation trace", lambda: run_serverless()),
    "e18": ("Sensitivity — coherent-link latency", lambda: run_sensitivity()),
}


def _jsonable(value):
    """Recursively convert experiment results to JSON-friendly data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    json_path = None
    if "--json" in argv:
        flag = argv.index("--json")
        try:
            json_path = argv[flag + 1]
        except IndexError:
            print("--json needs a path")
            return 2
        argv = argv[:flag] + argv[flag + 2:]
    selected = [a.lower() for a in argv] or list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}")
        print(f"available: {', '.join(EXPERIMENTS)}")
        return 2
    collected = {}
    for name in selected:
        title, runner = EXPERIMENTS[name]
        print(f"\n{'=' * 72}\n{name.upper()}: {title}\n{'=' * 72}")
        started = time.time()
        collected[name] = _jsonable(runner())
        print(f"\n[{name} completed in {time.time() - started:.1f} s wall clock]")
    if json_path is not None:
        with open(json_path, "w") as handle:
            json.dump(collected, handle, indent=2)
        print(f"\nraw results written to {json_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
