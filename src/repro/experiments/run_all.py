"""Run every experiment (E1-E24) and print the paper-shaped output.

Usage::

    python -m repro.experiments.run_all                   # everything
    python -m repro.experiments.run_all e1 e5 e7          # a subset
    python -m repro.experiments.run_all --json out.json   # + raw results
    python -m repro.experiments.run_all --jobs 4          # process pool
    python -m repro.experiments.run_all --no-cache        # force re-run
    python -m repro.experiments.run_all --timings         # per-job table
    python -m repro.experiments.run_all --faults          # fault plan on
    python -m repro.experiments.run_all --faults loss=0.01,stall=0.02

The printed tables are the reproduction's equivalents of the paper's
figures; EXPERIMENTS.md records a captured run next to the paper's own
numbers.  ``--json`` additionally dumps every experiment's structured
results (dataclasses, recursively serialised) plus per-experiment wall
clock under the ``"_timings_s"`` key.

This module is a thin CLI over :mod:`repro.exp`: experiments are
decomposed into independently schedulable jobs (one per sweep point),
fanned out over ``--jobs N`` processes (default ``$REPRO_JOBS`` or 1),
and memoised in the content-addressed cache under ``.repro-cache/``
(keyed by experiment, params, seed, and the code fingerprint of the
modules each experiment imports).  The tables are identical at any job
count; re-runs only execute jobs whose key changed.
"""

from __future__ import annotations

import json
import os
import sys

from ..exp.cache import ResultCache
from ..faults.context import ENV_VAR
from ..faults.plan import FaultPlan
from ..exp.jobs import EXPERIMENT_SPECS, run_experiments
from ..exp.pool import default_jobs, jsonable as _jsonable
from .ablation import run_crypto_ablation, run_deserialize_ablation
from .crossover import run_crossover
from .dynamic_mix import run_dynamic_mix
from .e21_timeline import run_timeline
from .e22_control import run_control
from .e23_fleet import run_fleet
from .e24_tenancy import run_tenancy
from .e25_slo import run_slo
from .fault_sweep import run_fault_sweep
from .fig1_steps import run_fig1_steps
from .fig2_roundtrip import run_fig2
from .fig5_dispatch import run_fig5_dispatch
from .four_stacks import run_four_stacks
from .iommu_tax import run_iommu_tax
from .load_sweep import run_load_sweep
from .model_check import run_model_check
from .nested_rpc import run_nested_rpc
from .obs_attribution import run_obs_attribution
from .protocol_cost import run_protocol_cost
from .report import format_table
from .sched_state import run_sched_state
from .sensitivity import run_sensitivity
from .serverless import run_serverless
from .telemetry_breakdown import run_telemetry_breakdown
from .throughput import run_lauberhorn_scaling, run_throughput
from .tryagain import run_timeout_ablation, run_tryagain_energy

__all__ = ["EXPERIMENTS", "main"]

# Legacy API: each experiment as (title, serial callable).  The CLI
# itself schedules through repro.exp's job registry; these callables
# remain for programmatic use and produce identical output/results.
_SERIAL = {
    "e1": lambda: run_fig2(),
    "e2": lambda: run_fig1_steps(),
    "e3": lambda: run_fig5_dispatch(),
    "e4": lambda: run_dynamic_mix(),
    "e5": lambda: run_crossover(),
    "e6": lambda: (run_tryagain_energy(), run_timeout_ablation()),
    "e7": lambda: run_model_check(),
    "e8": lambda: run_sched_state(),
    "e9": lambda: run_nested_rpc(),
    "e10": lambda: run_protocol_cost(),
    "e11": lambda: run_four_stacks(),
    "e12": lambda: (run_deserialize_ablation(), run_crypto_ablation()),
    "e13": lambda: run_telemetry_breakdown(),
    "e14": lambda: (run_throughput(), run_lauberhorn_scaling()),
    "e15": lambda: run_load_sweep(),
    "e16": lambda: run_iommu_tax(),
    "e17": lambda: run_serverless(),
    "e18": lambda: run_sensitivity(),
    "e19": lambda: run_fault_sweep(),
    "e20": lambda: run_obs_attribution(),
    "e21": lambda: run_timeline(),
    "e22": lambda: run_control(),
    "e23": lambda: run_fleet(),
    "e24": lambda: run_tenancy(),
    "e25": lambda: run_slo(),
}

EXPERIMENTS = {
    name: (EXPERIMENT_SPECS[name].title, _SERIAL[name])
    for name in EXPERIMENT_SPECS
}


def _print_timings(outcome, cache) -> None:
    rows = [
        (r.job_id, "cache" if r.cached else "ran",
         f"{r.wall_s:.3f}", f"{r.cpu_s:.3f}")
        for r in outcome.job_results
    ]
    print()
    print(format_table(["job", "source", "wall s", "cpu s"], rows,
                       title="Per-job timings"))
    if cache is not None:
        print(f"\ncache: {cache.hits} hit(s), {cache.misses} miss(es) "
              f"under {cache.root}/")


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    json_path = None
    jobs = default_jobs()
    root_seed = 0
    use_cache = True
    show_timings = False
    names: list[str] = []

    index = 0
    while index < len(argv):
        arg = argv[index]
        if arg == "--json":
            if index + 1 >= len(argv):
                print("--json needs a path")
                return 2
            json_path = argv[index + 1]
            index += 2
        elif arg in ("--jobs", "--seed"):
            if index + 1 >= len(argv):
                print(f"{arg} needs an integer")
                return 2
            try:
                value = int(argv[index + 1])
            except ValueError:
                print(f"{arg} needs an integer")
                return 2
            if arg == "--jobs":
                jobs = max(1, value)
            else:
                root_seed = value
            index += 2
        elif arg == "--no-cache":
            use_cache = False
            index += 1
        elif arg == "--faults":
            # Optional spec argument ("default,loss=0.05"); bare --faults
            # means the default plan.  The plan travels to every testbed
            # (and pool worker) via the REPRO_FAULTS env var, and is part
            # of the result-cache key, so fault runs cache like any other
            # (each distinct spec under its own keys).
            spec = "default"
            if index + 1 < len(argv) and "=" in argv[index + 1]:
                spec = argv[index + 1]
                index += 1
            try:
                FaultPlan.from_spec(spec)
            except ValueError as error:
                print(f"--faults: {error}")
                return 2
            os.environ[ENV_VAR] = spec
            index += 1
        elif arg == "--timings":
            show_timings = True
            index += 1
        else:
            names.append(arg)
            index += 1

    selected = [a.lower() for a in names] or list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}")
        print(f"available: {', '.join(EXPERIMENTS)}")
        return 2

    cache = ResultCache() if use_cache else None
    outcome = run_experiments(selected, jobs=jobs, cache=cache,
                              root_seed=root_seed)

    if show_timings:
        _print_timings(outcome, cache)
    if json_path is not None:
        payload = dict(outcome.values)
        payload["_timings_s"] = {
            name: round(wall, 6) for name, wall in outcome.timings_s.items()
        }
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nraw results written to {json_path}")
    return 1 if outcome.failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
