"""E15 — latency vs offered load: the hockey-stick curves.

Sweeps the open-loop arrival rate against each stack (one serving core)
and reports p50/p99 — the standard way to show where each architecture
saturates.  The knee should fall in the order of per-request software
cost: Linux first, then bypass, with Lauberhorn sustaining the highest
rate before its (protocol-bound) knee.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nic.lauberhorn import EndpointKind
from ..os.nicsched import lauberhorn_user_loop
from ..rpc.server import bypass_worker, linux_udp_worker
from ..sim.clock import MS
from ..workloads.generator import OpenLoopGenerator, ServiceMix, Target
from .report import fmt_ns, print_table
from .testbed import (
    build_bypass_testbed,
    build_lauberhorn_testbed,
    build_linux_testbed,
)

__all__ = ["LoadPoint", "measure_load_point", "render_load_sweep",
           "run_load_sweep"]

HANDLER_COST = 500


@dataclass(frozen=True)
class LoadPoint:
    stack: str
    rate_per_sec: float
    completed: int
    p50_ns: float
    p99_ns: float


def _build(stack: str):
    if stack == "linux":
        bed = build_linux_testbed()
        service = bed.registry.create_service("s", udp_port=9000)
        method = bed.registry.add_method(service, "m", lambda a: [1],
                                         cost_instructions=HANDLER_COST)
        socket = bed.netstack.bind(9000)
        process = bed.kernel.spawn_process("srv")
        bed.kernel.spawn_thread(process, linux_udp_worker(socket, bed.registry),
                                pinned_core=0)
        bed.nic.set_queue_core(0, 1)  # IRQs off the worker's core
        return bed, service, method
    if stack == "bypass":
        bed = build_bypass_testbed()
        service = bed.registry.create_service("s", udp_port=9000)
        method = bed.registry.add_method(service, "m", lambda a: [1],
                                         cost_instructions=HANDLER_COST)
        bed.nic.steer_port(9000, 0)
        process = bed.kernel.spawn_process("pmd")
        bed.kernel.spawn_thread(
            process, bypass_worker(bed.nic, bed.nic.queues[0],
                                   bed.user_netctx, bed.registry),
            pinned_core=0,
        )
        return bed, service, method
    if stack == "lauberhorn":
        bed = build_lauberhorn_testbed()
        service = bed.registry.create_service("s", udp_port=9000)
        method = bed.registry.add_method(service, "m", lambda a: [1],
                                         cost_instructions=HANDLER_COST)
        process = bed.kernel.spawn_process("srv")
        bed.nic.register_service(service, process.pid)
        endpoint = bed.nic.create_endpoint(
            EndpointKind.USER, service=service, backlog_capacity=4096
        )
        bed.kernel.spawn_thread(
            process, lauberhorn_user_loop(bed.nic, endpoint, bed.registry),
            pinned_core=0,
        )
        return bed, service, method
    raise ValueError(f"unknown stack {stack!r}")


def measure_load_point(
    stack: str, rate_per_sec: float, n_requests: int = 250,
) -> LoadPoint:
    """One sweep point: one stack at one offered rate, fresh testbed."""
    bed, service, method = _build(stack)
    generator = OpenLoopGenerator(
        bed.clients[0],
        ServiceMix([Target(service, method)]),
        bed.server_mac,
        bed.server_ip,
        rng=bed.machine.rng.stream("sweep"),
    )
    done = bed.sim.process(generator.run(rate_per_sec, n_requests))
    bed.machine.run(until=done)
    summary = generator.recorder.summary()
    return LoadPoint(
        stack=stack,
        rate_per_sec=rate_per_sec,
        completed=generator.completed,
        p50_ns=summary.p50,
        p99_ns=summary.p99,
    )


def render_load_sweep(points: list[LoadPoint]) -> None:
    print_table(
        ["stack", "offered kreq/s", "p50", "p99"],
        [(p.stack, f"{p.rate_per_sec / 1e3:.0f}", fmt_ns(p.p50_ns),
          fmt_ns(p.p99_ns)) for p in points],
        title="Latency vs offered load (one serving core)",
    )


def run_load_sweep(
    rates=(50e3, 150e3, 300e3, 600e3),
    n_requests: int = 250,
    stacks=("linux", "bypass", "lauberhorn"),
    verbose: bool = True,
) -> list[LoadPoint]:
    points = [
        measure_load_point(stack, rate, n_requests)
        for stack in stacks
        for rate in rates
    ]
    if verbose:
        render_load_sweep(points)
    return points
