"""Ready-made system assemblies for tests, examples, and benchmarks.

A *testbed* is one server machine (with one of the three NIC/stack
flavours), a switch, and one or more client nodes, wired up with
consistent MAC/IP identities.  Experiments ask for a testbed, register
services, spawn workers, and drive load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..hw.machine import Machine
from ..hw.params import ENZIAN, ENZIAN_PCIE, MachineParams
from ..net.headers import MacAddress
from ..net.link import SwitchFabric
from ..net.packet import ip_address
from ..nic.bypass import BypassNic
from ..nic.dma import DmaNic
from ..os.kernel import Kernel
from ..os.netstack import NetStack
from ..rpc.server import UserNetContext
from ..rpc.service import ServiceRegistry
from ..workloads.client import ClientNode

__all__ = ["Testbed", "build_linux_testbed", "build_bypass_testbed",
           "build_lauberhorn_testbed", "SERVER_MAC", "SERVER_IP"]

SERVER_MAC = MacAddress.from_string("02:00:00:00:00:01")
SERVER_IP = ip_address("10.0.0.1")


def _client_identity(index: int) -> tuple[MacAddress, int]:
    mac = MacAddress.from_string(f"02:00:00:00:01:{index:02x}")
    ip = ip_address(f"10.0.1.{index + 1}")
    return mac, ip


@dataclass
class Testbed:
    """One assembled system under test."""

    machine: Machine
    switch: SwitchFabric
    nic: object
    kernel: Optional[Kernel]
    netstack: Optional[NetStack]
    registry: ServiceRegistry
    clients: list[ClientNode] = field(default_factory=list)
    #: user-space net identity for bypass workers (bypass testbeds only)
    user_netctx: Optional[UserNetContext] = None

    @property
    def sim(self):
        return self.machine.sim

    @property
    def server_mac(self) -> MacAddress:
        return SERVER_MAC

    @property
    def server_ip(self) -> int:
        return SERVER_IP

    def call_args(self, service, method) -> dict:
        """Keyword arguments for :meth:`ClientNode.call` to a service."""
        return dict(
            dst_mac=SERVER_MAC,
            dst_ip=SERVER_IP,
            dst_port=service.udp_port,
            service_id=service.service_id,
            method_id=method.method_id,
        )


def _finish_faults(bed: Testbed) -> None:
    """Install wire/NIC-level fault injectors once all ports exist.

    A no-op (not even an import of the injectors) unless the machine
    was built under an active fault plan.
    """
    if getattr(bed.machine, "faults", None) is not None:
        from ..faults.inject import install_testbed_faults

        install_testbed_faults(bed)


def _base(
    params: MachineParams,
    n_clients: int,
    seed: int,
    switch_latency_ns: float,
) -> tuple[Machine, SwitchFabric, list[ClientNode]]:
    machine = Machine(params, seed=seed)
    switch = SwitchFabric(
        machine.sim,
        bandwidth_bps=params.link_bps,
        port_latency_ns=switch_latency_ns,
    )
    clients = []
    for index in range(n_clients):
        mac, ip = _client_identity(index)
        clients.append(
            ClientNode(machine.sim, switch, mac, ip, name=f"client{index}")
        )
    return machine, switch, clients


def build_linux_testbed(
    params: MachineParams = ENZIAN_PCIE,
    n_clients: int = 1,
    n_queues: int = 4,
    seed: int = 0,
    switch_latency_ns: float = 250.0,
) -> Testbed:
    """Server running the conventional kernel stack on a DMA NIC."""
    machine, switch, clients = _base(params, n_clients, seed, switch_latency_ns)
    kernel = Kernel(machine)
    netstack = NetStack(kernel, ip=SERVER_IP, mac=SERVER_MAC)
    for client in clients:
        netstack.add_neighbor(client.ip, client.mac)
    port = switch.attach(SERVER_MAC, "server")
    nic = DmaNic(machine, port, n_queues=n_queues)
    nic.attach_kernel(kernel)
    nic.start()
    kernel.start()
    bed = Testbed(
        machine=machine,
        switch=switch,
        nic=nic,
        kernel=kernel,
        netstack=netstack,
        registry=ServiceRegistry(),
        clients=clients,
    )
    _finish_faults(bed)
    return bed


def build_bypass_testbed(
    params: MachineParams = ENZIAN_PCIE,
    n_clients: int = 1,
    n_queues: int = 1,
    seed: int = 0,
    switch_latency_ns: float = 250.0,
    with_kernel: bool = True,
) -> Testbed:
    """Server running a kernel-bypass (PMD) stack.

    A kernel still exists (it hosts/pins the worker threads), but the
    data path never enters it.
    """
    machine, switch, clients = _base(params, n_clients, seed, switch_latency_ns)
    kernel = Kernel(machine) if with_kernel else None
    port = switch.attach(SERVER_MAC, "server")
    nic = BypassNic(machine, port, n_queues=n_queues)
    nic.start()
    if kernel is not None:
        kernel.register_nic(nic)
        kernel.start()
    arp = {client.ip: client.mac for client in clients}
    bed = Testbed(
        machine=machine,
        switch=switch,
        nic=nic,
        kernel=kernel,
        netstack=None,
        registry=ServiceRegistry(),
        clients=clients,
        user_netctx=UserNetContext(ip=SERVER_IP, mac=SERVER_MAC, arp=arp),
    )
    _finish_faults(bed)
    return bed


def build_lauberhorn_testbed(
    params: MachineParams = ENZIAN,
    n_clients: int = 1,
    seed: int = 0,
    switch_latency_ns: float = 250.0,
    n_aux: int = 31,
    dma_threshold_bytes: int = 4096,
    tryagain_timeout_ns: Optional[float] = None,
    preempt_on_backlog: bool = False,
) -> Testbed:
    """Server with the Lauberhorn cache-coherent NIC (needs a coherent
    machine preset such as ENZIAN or MODERN_SERVER_CXL)."""
    from ..nic.lauberhorn import LauberhornNic

    machine, switch, clients = _base(params, n_clients, seed, switch_latency_ns)
    kernel = Kernel(machine)
    registry = ServiceRegistry()
    port = switch.attach(SERVER_MAC, "server")
    nic = LauberhornNic(
        machine,
        port,
        registry,
        mac=SERVER_MAC,
        ip=SERVER_IP,
        n_aux=n_aux,
        dma_threshold_bytes=dma_threshold_bytes,
        tryagain_timeout_ns=tryagain_timeout_ns,
        preempt_on_backlog=preempt_on_backlog,
    )
    kernel.register_nic(nic)
    nic.start()
    kernel.start()
    bed = Testbed(
        machine=machine,
        switch=switch,
        nic=nic,
        kernel=kernel,
        netstack=None,
        registry=registry,
        clients=clients,
    )
    _finish_faults(bed)
    return bed
