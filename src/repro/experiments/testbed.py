"""Ready-made system assemblies for tests, examples, and benchmarks.

A *testbed* is one server machine (with one of the three NIC/stack
flavours), a switch, and one or more client nodes, wired up with
consistent MAC/IP identities.  Experiments ask for a testbed, register
services, spawn workers, and drive load.

The per-stack wiring lives in ``_assemble_*`` helpers shared with the
rack-scale builder (:mod:`repro.fleet`): a fleet host is the same
assembly pointed at a ToR port with its own MAC/IP, which is what
makes a 1-host fleet byte-identical to these legacy beds.
:func:`deploy_service` likewise centralises the echo-service
deployment recipes that used to live in ``four_stacks``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..hw.machine import Machine
from ..hw.params import ENZIAN, ENZIAN_PCIE, MachineParams
from ..net.headers import MacAddress
from ..net.link import SwitchFabric
from ..net.packet import ip_address
from ..nic.bypass import BypassNic
from ..nic.dma import DmaNic
from ..os.kernel import Kernel
from ..os.netstack import NetStack
from ..rpc.server import UserNetContext
from ..rpc.service import ServiceRegistry
from ..workloads.client import ClientNode

__all__ = ["Testbed", "build_linux_testbed", "build_bypass_testbed",
           "build_lauberhorn_testbed", "deploy_service",
           "SERVER_MAC", "SERVER_IP"]

SERVER_MAC = MacAddress.from_string("02:00:00:00:00:01")
SERVER_IP = ip_address("10.0.0.1")


def _client_identity(index: int) -> tuple[MacAddress, int]:
    mac = MacAddress.from_string(f"02:00:00:00:01:{index:02x}")
    ip = ip_address(f"10.0.1.{index + 1}")
    return mac, ip


@dataclass
class Testbed:
    """One assembled system under test."""

    machine: Machine
    switch: SwitchFabric
    nic: object
    kernel: Optional[Kernel]
    netstack: Optional[NetStack]
    registry: ServiceRegistry
    clients: list[ClientNode] = field(default_factory=list)
    #: user-space net identity for bypass workers (bypass testbeds only)
    user_netctx: Optional[UserNetContext] = None
    #: this server's network identity (fleet hosts override these)
    server_mac: MacAddress = SERVER_MAC
    server_ip: int = SERVER_IP

    @property
    def sim(self):
        return self.machine.sim

    def call_args(self, service, method) -> dict:
        """Keyword arguments for :meth:`ClientNode.call` to a service."""
        return dict(
            dst_mac=self.server_mac,
            dst_ip=self.server_ip,
            dst_port=service.udp_port,
            service_id=service.service_id,
            method_id=method.method_id,
        )


def _finish_faults(bed: Testbed) -> None:
    """Install wire/NIC-level fault injectors once all ports exist.

    A no-op (not even an import of the injectors) unless the machine
    was built under an active fault plan.
    """
    if getattr(bed.machine, "faults", None) is not None:
        from ..faults.inject import install_testbed_faults

        install_testbed_faults(bed)


def _base(
    params: MachineParams,
    n_clients: int,
    seed: int,
    switch_latency_ns: float,
) -> tuple[Machine, SwitchFabric, list[ClientNode]]:
    machine = Machine(params, seed=seed)
    switch = SwitchFabric(
        machine.sim,
        bandwidth_bps=params.link_bps,
        port_latency_ns=switch_latency_ns,
    )
    clients = []
    for index in range(n_clients):
        mac, ip = _client_identity(index)
        clients.append(
            ClientNode(machine.sim, switch, mac, ip, name=f"client{index}")
        )
    return machine, switch, clients


def _assemble_linux(
    machine: Machine,
    switch: SwitchFabric,
    clients: list[ClientNode],
    *,
    n_queues: int = 4,
    mac: MacAddress = SERVER_MAC,
    ip: int = SERVER_IP,
    port_name: str = "server",
    nic_name: Optional[str] = None,
) -> Testbed:
    """Wire the conventional kernel stack onto ``switch``; no faults yet."""
    kernel = Kernel(machine)
    netstack = NetStack(kernel, ip=ip, mac=mac)
    for client in clients:
        netstack.add_neighbor(client.ip, client.mac)
    port = switch.attach(mac, port_name)
    nic_kwargs = {} if nic_name is None else {"name": nic_name}
    nic = DmaNic(machine, port, n_queues=n_queues, **nic_kwargs)
    nic.attach_kernel(kernel)
    nic.start()
    kernel.start()
    return Testbed(
        machine=machine,
        switch=switch,
        nic=nic,
        kernel=kernel,
        netstack=netstack,
        registry=ServiceRegistry(),
        clients=clients,
        server_mac=mac,
        server_ip=ip,
    )


def build_linux_testbed(
    params: MachineParams = ENZIAN_PCIE,
    n_clients: int = 1,
    n_queues: int = 4,
    seed: int = 0,
    switch_latency_ns: float = 250.0,
) -> Testbed:
    """Server running the conventional kernel stack on a DMA NIC."""
    machine, switch, clients = _base(params, n_clients, seed, switch_latency_ns)
    bed = _assemble_linux(machine, switch, clients, n_queues=n_queues)
    _finish_faults(bed)
    return bed


def build_bypass_testbed(
    params: MachineParams = ENZIAN_PCIE,
    n_clients: int = 1,
    n_queues: int = 1,
    seed: int = 0,
    switch_latency_ns: float = 250.0,
    with_kernel: bool = True,
) -> Testbed:
    """Server running a kernel-bypass (PMD) stack.

    A kernel still exists (it hosts/pins the worker threads), but the
    data path never enters it.
    """
    machine, switch, clients = _base(params, n_clients, seed, switch_latency_ns)
    bed = _assemble_bypass(machine, switch, clients, n_queues=n_queues,
                           with_kernel=with_kernel)
    _finish_faults(bed)
    return bed


def _assemble_bypass(
    machine: Machine,
    switch: SwitchFabric,
    clients: list[ClientNode],
    *,
    n_queues: int = 1,
    with_kernel: bool = True,
    mac: MacAddress = SERVER_MAC,
    ip: int = SERVER_IP,
    port_name: str = "server",
    nic_name: Optional[str] = None,
) -> Testbed:
    """Wire a kernel-bypass (PMD) stack onto ``switch``; no faults yet."""
    kernel = Kernel(machine) if with_kernel else None
    port = switch.attach(mac, port_name)
    nic_kwargs = {} if nic_name is None else {"name": nic_name}
    nic = BypassNic(machine, port, n_queues=n_queues, **nic_kwargs)
    nic.start()
    if kernel is not None:
        kernel.register_nic(nic)
        kernel.start()
    arp = {client.ip: client.mac for client in clients}
    return Testbed(
        machine=machine,
        switch=switch,
        nic=nic,
        kernel=kernel,
        netstack=None,
        registry=ServiceRegistry(),
        clients=clients,
        user_netctx=UserNetContext(ip=ip, mac=mac, arp=arp),
        server_mac=mac,
        server_ip=ip,
    )


def build_lauberhorn_testbed(
    params: MachineParams = ENZIAN,
    n_clients: int = 1,
    seed: int = 0,
    switch_latency_ns: float = 250.0,
    n_aux: int = 31,
    dma_threshold_bytes: int = 4096,
    tryagain_timeout_ns: Optional[float] = None,
    preempt_on_backlog: bool = False,
) -> Testbed:
    """Server with the Lauberhorn cache-coherent NIC (needs a coherent
    machine preset such as ENZIAN or MODERN_SERVER_CXL)."""
    machine, switch, clients = _base(params, n_clients, seed, switch_latency_ns)
    bed = _assemble_lauberhorn(
        machine, switch, clients,
        n_aux=n_aux,
        dma_threshold_bytes=dma_threshold_bytes,
        tryagain_timeout_ns=tryagain_timeout_ns,
        preempt_on_backlog=preempt_on_backlog,
    )
    _finish_faults(bed)
    return bed


def _assemble_lauberhorn(
    machine: Machine,
    switch: SwitchFabric,
    clients: list[ClientNode],
    *,
    n_aux: int = 31,
    dma_threshold_bytes: int = 4096,
    tryagain_timeout_ns: Optional[float] = None,
    preempt_on_backlog: bool = False,
    mac: MacAddress = SERVER_MAC,
    ip: int = SERVER_IP,
    port_name: str = "server",
    nic_name: Optional[str] = None,
) -> Testbed:
    """Wire the coherent-NIC stack onto ``switch``; no faults yet."""
    from ..nic.lauberhorn import LauberhornNic

    kernel = Kernel(machine)
    registry = ServiceRegistry()
    port = switch.attach(mac, port_name)
    nic_kwargs = {} if nic_name is None else {"name": nic_name}
    nic = LauberhornNic(
        machine,
        port,
        registry,
        mac=mac,
        ip=ip,
        n_aux=n_aux,
        dma_threshold_bytes=dma_threshold_bytes,
        tryagain_timeout_ns=tryagain_timeout_ns,
        preempt_on_backlog=preempt_on_backlog,
        **nic_kwargs,
    )
    kernel.register_nic(nic)
    nic.start()
    kernel.start()
    return Testbed(
        machine=machine,
        switch=switch,
        nic=nic,
        kernel=kernel,
        netstack=None,
        registry=registry,
        clients=clients,
        server_mac=mac,
        server_ip=ip,
    )


_ASSEMBLERS = {
    "linux": _assemble_linux,
    "snap": _assemble_bypass,
    "bypass": _assemble_bypass,
    "lauberhorn": _assemble_lauberhorn,
}


def deploy_service(
    bed: Testbed,
    stack: str,
    handler=None,
    *,
    name: str = "echo",
    udp_port: int = 9000,
    cost_instructions: int = 500,
    method_name: str = "m",
    core: int = 0,
    tenant=None,
    encrypted: bool = False,
):
    """Register a one-method service on ``bed`` and spawn its workers.

    ``stack`` names the serving architecture the bed was assembled for
    (``linux``/``snap``/``bypass``/``lauberhorn``); ``core`` pins the
    primary worker (snap uses ``core`` for the engine and ``core + 1``
    for the worker, mirroring the legacy four-stacks wiring).
    ``tenant`` (lauberhorn only) binds the service to a tenant of the
    NIC's attached :class:`repro.tenancy.TenantTable`.  Returns
    ``(service, method)``.
    """
    if handler is None:
        handler = lambda a: list(a)  # noqa: E731 — echo by default
    service = bed.registry.create_service(name, udp_port=udp_port,
                                          encrypted=encrypted)
    method = bed.registry.add_method(service, method_name, handler,
                                     cost_instructions=cost_instructions)
    if stack == "linux":
        from ..rpc.server import linux_udp_worker

        socket = bed.netstack.bind(udp_port)
        proc = bed.kernel.spawn_process("srv")
        bed.kernel.spawn_thread(proc, linux_udp_worker(socket, bed.registry))
    elif stack == "snap":
        from ..rpc.snap import SnapEngine, snap_engine_body, snap_worker_body

        bed.nic.steer_port(udp_port, 0)
        engine = SnapEngine(bed.sim, bed.registry, bed.user_netctx)
        engine_proc = bed.kernel.spawn_process("snap-engine")
        bed.kernel.spawn_thread(
            engine_proc,
            snap_engine_body(bed.nic, [bed.nic.queues[0]], engine),
            pinned_core=core,
        )
        worker_proc = bed.kernel.spawn_process("snap-worker")
        bed.kernel.spawn_thread(
            worker_proc, snap_worker_body(engine, service),
            pinned_core=core + 1,
        )
    elif stack == "bypass":
        from ..rpc.server import bypass_worker

        bed.nic.steer_port(udp_port, 0)
        proc = bed.kernel.spawn_process("pmd")
        bed.kernel.spawn_thread(
            proc,
            bypass_worker(bed.nic, bed.nic.queues[0], bed.user_netctx,
                          bed.registry),
            pinned_core=core,
        )
    elif stack == "lauberhorn":
        from ..nic.lauberhorn import EndpointKind
        from ..os.nicsched import lauberhorn_user_loop

        proc = bed.kernel.spawn_process("srv")
        bed.nic.register_service(service, proc.pid, tenant=tenant)
        endpoint = bed.nic.create_endpoint(EndpointKind.USER, service=service)
        bed.kernel.spawn_thread(
            proc, lauberhorn_user_loop(bed.nic, endpoint, bed.registry),
            pinned_core=core,
        )
    else:
        raise ValueError(f"unknown stack {stack!r}")
    return service, method
