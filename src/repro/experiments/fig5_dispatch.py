"""E3 — Figure 5: normal task scheduling vs NIC-driven scheduling.

Figure 5 contrasts the Linux dispatch loop (NIC -> IRQ -> softirq ->
socket -> scheduler -> worker) with Lauberhorn's NIC-driven dispatch,
in three regimes:

* **linux**        — the conventional loop;
* **lauberhorn-hot**  — the process's user-mode loop is stalled on its
  CONTROL lines (Figure 5 ①): zero-software dispatch;
* **lauberhorn-kernel** — no user loop armed; a parked kernel thread
  takes the request, context-switches into the process, and completes
  it in software (Figure 5 ③, promotion off);
* **lauberhorn-promote** — as above, but the dispatcher then stays in
  the process running its user loop, so request 2..n ride the fast
  path (Figure 5 ① after ③).

Reported per configuration: client-observed RTT percentiles and server
CPU busy per request.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.cycles import CycleWindow
from ..metrics.histogram import LatencyRecorder
from ..nic.lauberhorn import EndpointKind
from ..os.nicsched import NicScheduler, lauberhorn_user_loop
from ..rpc.server import linux_udp_worker
from ..sim.clock import MS
from .report import fmt_ns, print_table
from .testbed import build_lauberhorn_testbed, build_linux_testbed

__all__ = ["DispatchResult", "run_fig5_dispatch"]

HANDLER_COST = 300


@dataclass(frozen=True)
class DispatchResult:
    config: str
    p50_rtt_ns: float
    p99_rtt_ns: float
    busy_ns_per_request: float
    kernel_dispatches: int
    fast_dispatches: int


def _echo_service(bed, port=9000):
    service = bed.registry.create_service("echo", udp_port=port)
    method = bed.registry.add_method(
        service, "echo", lambda args: list(args), cost_instructions=HANDLER_COST
    )
    return service, method


def _measure(bed, service, method, n_requests: int):
    client = bed.clients[0]
    recorder = LatencyRecorder()
    window = CycleWindow(bed.machine)
    state = {}

    def driver():
        yield bed.sim.timeout(10_000)
        # one warmup round trip
        yield from client.call(args=[0], **bed.call_args(service, method))
        window.begin()
        for i in range(n_requests):
            result = yield from client.call(
                args=[i], **bed.call_args(service, method)
            )
            recorder.record(result.rtt_ns)
        state["cost"] = window.end(n_requests)

    bed.sim.process(driver())
    bed.machine.run(until=4000 * MS)
    summary = recorder.summary()
    return summary, state["cost"]


def run_fig5_dispatch(n_requests: int = 25, verbose: bool = True):
    results: list[DispatchResult] = []

    # Linux dispatch loop.
    bed = build_linux_testbed()
    service, method = _echo_service(bed)
    socket = bed.netstack.bind(9000)
    process = bed.kernel.spawn_process("echo")
    bed.kernel.spawn_thread(process, linux_udp_worker(socket, bed.registry))
    summary, cost = _measure(bed, service, method, n_requests)
    results.append(DispatchResult(
        "linux", summary.p50, summary.p99, cost.busy_ns_per_request, 0, 0,
    ))

    # Lauberhorn hot: dedicated user loop armed.
    bed = build_lauberhorn_testbed()
    service, method = _echo_service(bed)
    process = bed.kernel.spawn_process("echo")
    bed.nic.register_service(service, process.pid)
    endpoint = bed.nic.create_endpoint(EndpointKind.USER, service=service)
    bed.kernel.spawn_thread(
        process, lauberhorn_user_loop(bed.nic, endpoint, bed.registry),
        pinned_core=0,
    )
    summary, cost = _measure(bed, service, method, n_requests)
    results.append(DispatchResult(
        "lauberhorn-hot", summary.p50, summary.p99,
        cost.busy_ns_per_request,
        bed.nic.lstats.delivered_kernel, bed.nic.lstats.delivered_fast,
    ))

    # Lauberhorn kernel dispatch (cold every request: no promotion).
    bed = build_lauberhorn_testbed()
    service, method = _echo_service(bed)
    process = bed.kernel.spawn_process("echo")
    bed.nic.register_service(service, process.pid)
    NicScheduler(bed.kernel, bed.nic, bed.registry, n_dispatchers=1,
                 promote=False)
    summary, cost = _measure(bed, service, method, n_requests)
    results.append(DispatchResult(
        "lauberhorn-kernel", summary.p50, summary.p99,
        cost.busy_ns_per_request,
        bed.nic.lstats.delivered_kernel, bed.nic.lstats.delivered_fast,
    ))

    # Lauberhorn with promotion: first request cold, rest hot.
    bed = build_lauberhorn_testbed()
    service, method = _echo_service(bed)
    process = bed.kernel.spawn_process("echo")
    bed.nic.register_service(service, process.pid)
    bed.nic.create_endpoint(EndpointKind.USER, service=service)
    NicScheduler(bed.kernel, bed.nic, bed.registry, n_dispatchers=1,
                 promote=True)
    summary, cost = _measure(bed, service, method, n_requests)
    results.append(DispatchResult(
        "lauberhorn-promote", summary.p50, summary.p99,
        cost.busy_ns_per_request,
        bed.nic.lstats.delivered_kernel, bed.nic.lstats.delivered_fast,
    ))

    if verbose:
        print_table(
            ["configuration", "p50 RTT", "p99 RTT", "busy/req",
             "kernel-dispatched", "fast-dispatched"],
            [
                (r.config, fmt_ns(r.p50_rtt_ns), fmt_ns(r.p99_rtt_ns),
                 fmt_ns(r.busy_ns_per_request), r.kernel_dispatches,
                 r.fast_dispatches)
                for r in results
            ],
            title="Figure 5 — dispatch-loop comparison "
                  f"(echo RPC, {n_requests} requests)",
        )
    return results
