"""E21 — system timelines: time series, flight recorder, tail forensics.

E20 established *request-scoped* observability (span trees, armed runs
bit-identical to unarmed).  This experiment adds the *system-scoped*
half and joins the two:

* **windowed time series** — a :class:`~repro.obs.timeseries.\
TimeSeriesSampler` reads the full metrics registry every ``WINDOW_NS``
  of simulated time, so run-queue depth, NIC ring occupancy, socket
  backlog, and fault counters become plottable series spanning the
  hardware, OS, and NIC layers of every stack;
* **flight recorder** — a bounded ring of recent annotated events
  (span opens/closes, scheduler dispatches, Tryagain bounces, fault
  injections); a deliberately injected invariant violation mid-run
  makes :class:`~repro.check.CheckRegistry` freeze a post-mortem dump,
  demonstrating the dump-on-violation path end to end;
* **tail forensics** — :func:`~repro.obs.tail.tail_report` joins each
  p99.9 request's span tree with the time-series windows and flight
  events it overlapped, attributing every slow request to the
  concurrent system state instead of leaving it a mystery number.

The workload is the E11 echo service driven in *bursts* (back-to-back
submissions separated by idle gaps) under a mild fault plan, so the
timelines show real queue build-up and the tail has actual causes.
As in E20, every stack runs unarmed first and the armed run's RTT list
must be **bit-identical** — sampling timers and ring appends are
host-side only.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Optional

from ..check import install_checks
from ..faults import FaultPlan, active
from ..obs.flight import FlightRecorder
from ..obs.instrument import arm_flight, arm_testbed, bind_testbed_metrics
from ..obs.tail import render_tail_report, tail_report
from ..obs.timeseries import TimeSeriesSampler
from ..sim.clock import MS
from .four_stacks import STACKS, _build_stack
from .report import fmt_ns, print_table

__all__ = ["TimelineResult", "measure_timeline_stack", "render_timeline",
           "write_timeline_artifact", "validate_timeline_payload",
           "run_timeline", "TIMELINE_ARTIFACT"]

#: default location of the JSON artifact (relative to the runner's cwd)
TIMELINE_ARTIFACT = "results/e21_timeline.json"

#: sampling window width: 120 windows over the 60 ms horizon
WINDOW_NS = 500_000.0
MAX_WINDOWS = 256
FLIGHT_CAPACITY = 512
HORIZON_NS = 60 * MS
#: when the deliberately broken invariant first reports a problem
INJECT_AT_NS = 30 * MS
TAIL_QUANTILE = 0.999

N_REQUESTS = 40
BURST = 8
BURST_GAP_NS = 600_000.0

#: the fault mix behind the timelines: mild loss + RX stalls plus the
#: FaultPlan.default background rates, same spec family as E19
FAULT_SPEC = "default,seed={seed},loss=0.01,stall=0.01"

#: layer attribution for the metric-coverage table: snapshot-key prefix
#: -> layer label
LAYER_PREFIXES = (("machine.", "hw"), ("kernel.", "os"),
                  ("netstack.", "os"), ("nic.", "nic"))


@dataclass(frozen=True)
class TimelineResult:
    """One stack's timeline run (JSON-able field for field)."""

    stack: str
    n_requests: int
    completed: int
    #: armed RTT list == unarmed RTT list, element for element
    identical: bool
    p50_rtt_ns: float
    p999_rtt_ns: float
    #: {"hw": n, "os": n, "nic": n} distinct windowed metric names
    layers: dict = field(default_factory=dict)
    #: :meth:`TimeSeriesSampler.as_dict` payload
    timeseries: dict = field(default_factory=dict)
    #: the CheckRegistry's frozen post-mortem (None = no violation seen)
    flight_dump: Optional[dict] = None
    #: recorded violations as strings (the injected one, and only it)
    violations: list = field(default_factory=list)
    #: :func:`tail_report` payload
    tail: dict = field(default_factory=dict)


def _drive(bed, service, method, n_requests: int) -> list[float]:
    """Bursty open-loop echo load; returns completed RTTs in order."""
    client = bed.clients[0]
    rtts: list[float] = []

    def collect(event):
        rtts.append(event._value.rtt_ns)

    def driver():
        yield bed.sim.timeout(10_000)
        sent = 0
        while sent < n_requests:
            for _ in range(min(BURST, n_requests - sent)):
                event = client.send_request(
                    bed.server_mac, bed.server_ip, service.udp_port,
                    service.service_id, method.method_id, [sent],
                )
                event.add_callback(collect)
                sent += 1
            yield bed.sim.timeout(BURST_GAP_NS)

    bed.sim.process(driver())
    bed.machine.run(until=HORIZON_NS)
    return rtts


def _inject_violation(checks, sim, at_ns: float) -> None:
    """Register a check that reports exactly one deliberate violation.

    It fires on the first periodic sample at or after ``at_ns``; with
    a flight recorder attached to the registry, that single violation
    freezes the post-mortem dump this experiment demonstrates.
    """
    fired: list[bool] = []

    def check():
        if not fired and sim.now >= at_ns:
            fired.append(True)
            return [f"deliberately injected for the E21 post-mortem "
                    f"demo at {sim.now:.0f} ns"]
        return ()

    checks.add("e21-injected", check)


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _layer_counts(names: list[str]) -> dict[str, int]:
    counts = {"hw": 0, "os": 0, "nic": 0}
    for name in names:
        for prefix, layer in LAYER_PREFIXES:
            if name.startswith(prefix):
                counts[layer] += 1
                break
    return counts


def measure_timeline_stack(stack: str, n_requests: int = N_REQUESTS,
                           seed: int = 0) -> TimelineResult:
    """Run one stack unarmed then fully armed; join the three layers."""
    plan = FaultPlan.from_spec(FAULT_SPEC.format(seed=seed))

    with active(plan):
        bed, service, method = _build_stack(stack)
    base_rtts = _drive(bed, service, method, n_requests)

    with active(plan):
        bed, service, method = _build_stack(stack)
    recorder = arm_testbed(bed)
    registry = bind_testbed_metrics(bed)
    sampler = TimeSeriesSampler(bed.sim, registry, window_ns=WINDOW_NS,
                                max_windows=MAX_WINDOWS)
    flight = FlightRecorder(bed.sim, capacity=FLIGHT_CAPACITY)
    arm_flight(bed, flight, recorder=recorder)
    checks = install_checks(bed)
    checks.flight = flight
    _inject_violation(checks, bed.sim, INJECT_AT_NS)
    sampler.start(HORIZON_NS)
    checks.start(HORIZON_NS)
    armed_rtts = _drive(bed, service, method, n_requests)
    sampler.finish()
    violations = checks.finish()

    tail = tail_report(recorder, sampler, flight=flight,
                       quantile=TAIL_QUANTILE, max_requests=8)
    return TimelineResult(
        stack=stack,
        n_requests=n_requests,
        completed=len(armed_rtts),
        identical=armed_rtts == base_rtts,
        p50_rtt_ns=_percentile(armed_rtts, 0.50),
        p999_rtt_ns=_percentile(armed_rtts, TAIL_QUANTILE),
        layers=_layer_counts(sampler.names()),
        timeseries=sampler.as_dict(),
        flight_dump=checks.flight_dump,
        violations=[str(v) for v in violations],
        tail=tail,
    )


def render_timeline(results: list["TimelineResult"]) -> None:
    """The E21 artifact: coverage summary + per-stack tail forensics."""
    rows = []
    for r in results:
        dump = r.flight_dump
        dump_cell = (f"{len(dump['events'])} events"
                     if dump is not None else "MISSING")
        rows.append((
            r.stack,
            f"{r.completed}/{r.n_requests}",
            str(r.timeseries.get("samples", 0)),
            f"hw:{r.layers.get('hw', 0)} os:{r.layers.get('os', 0)} "
            f"nic:{r.layers.get('nic', 0)}",
            dump_cell,
            str(len(r.violations)),
            "yes" if r.identical else "NO",
        ))
    print_table(
        ["stack", "done", "windows", "metrics by layer", "flight dump",
         "violations", "identical"],
        rows,
        title="E21 — timelines, post-mortems, and the determinism "
              "contract",
    )
    print_table(
        ["stack", "p50 RTT", "p99.9 RTT", "slow reqs", "threshold"],
        [(r.stack, fmt_ns(r.p50_rtt_ns), fmt_ns(r.p999_rtt_ns),
          f"{r.tail.get('n_slow', 0)}/{r.tail.get('n_requests', 0)}",
          fmt_ns(r.tail.get("threshold_ns", 0.0))) for r in results],
        title="Tail forensics — p99.9 requests joined with system state",
    )
    for r in results:
        print()
        print(render_tail_report(r.tail, title=r.stack))


def write_timeline_artifact(results: list["TimelineResult"],
                            path: str = TIMELINE_ARTIFACT) -> dict:
    """Write the full joined payload as one JSON artifact."""
    from ..exp.pool import jsonable

    payload = {
        "experiment": "e21",
        "window_ns": WINDOW_NS,
        "horizon_ns": HORIZON_NS,
        "stacks": {r.stack: jsonable(r) for r in results},
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)
    return payload


def validate_timeline_payload(payload: dict) -> None:
    """Schema/acceptance check for the E21 artifact; raises ValueError.

    Checks what the experiment promises: every stack has windowed
    series for at least six metrics spanning the hw, OS, and NIC
    layers; the injected violation froze a flight dump; the tail
    report attributes every slow request; armed == unarmed.
    """
    problems: list[str] = []
    stacks = payload.get("stacks")
    if not isinstance(stacks, dict):
        raise ValueError("payload has no 'stacks' mapping")
    missing = [s for s in STACKS if s not in stacks]
    if missing:
        problems.append(f"missing stacks: {missing}")
    for stack, entry in stacks.items():
        if not entry.get("identical"):
            problems.append(f"{stack}: armed run was not bit-identical")
        layers = entry.get("layers", {})
        if sum(layers.values()) < 6:
            problems.append(f"{stack}: fewer than 6 windowed metrics")
        for layer in ("hw", "os", "nic"):
            if layers.get(layer, 0) < 1:
                problems.append(f"{stack}: no {layer}-layer metrics")
        ts = entry.get("timeseries", {})
        windows = ts.get("windows", [])
        if not windows:
            problems.append(f"{stack}: no time-series windows")
        if ts.get("samples", 0) != (len(windows)
                                    + ts.get("dropped_windows", 0)):
            problems.append(f"{stack}: window accounting does not balance")
        dump = entry.get("flight_dump")
        if not dump or not dump.get("events"):
            problems.append(f"{stack}: no flight dump (or it is empty)")
        elif not dump.get("reason"):
            problems.append(f"{stack}: flight dump has no trigger reason")
        tail = entry.get("tail", {})
        requests = tail.get("requests", [])
        if not requests:
            problems.append(f"{stack}: tail report has no requests")
        for record in requests:
            if "state" not in record or "stages" not in record:
                problems.append(
                    f"{stack}: tail request {record.get('trace_id')} "
                    "lacks state/stage attribution")
    if problems:
        raise ValueError("; ".join(problems))


def run_timeline(n_requests: int = N_REQUESTS, verbose: bool = True,
                 artifact_path: str = TIMELINE_ARTIFACT
                 ) -> list[TimelineResult]:
    results = [measure_timeline_stack(stack, n_requests)
               for stack in STACKS]
    if verbose:
        render_timeline(results)
        payload = write_timeline_artifact(results, artifact_path)
        validate_timeline_payload(payload)
        print(f"\n[wrote {artifact_path}: "
              f"{len(payload['stacks'])} stacks]")
    return results
