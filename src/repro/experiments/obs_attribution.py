"""E20 — request-scoped observability: attribution and overhead.

Runs the Section 2 design space (the same four stacks and echo
workload as E11) twice per stack: once *unarmed* (no span recorder
attached, the shipping configuration) and once *armed* (every layer
records spans into one :class:`~repro.obs.spans.SpanRecorder`).

Two results come out:

* **per-stage latency attribution** — where a request's RTT actually
  goes in each architecture (wire, NIC, softirq, sockets, application,
  egress), computed from the span tree rather than hand-inserted
  timestamps; and
* **measured tracing overhead** — spans do Python-side bookkeeping
  only and never advance simulated time, so the armed run must produce
  *bit-identical* RTTs; the host-CPU cost of arming is reported from
  wall-clock timing.

The armed spans are also the payload for the Perfetto/Chrome-trace
artifact (``results/e20_trace.json``) written by the runner.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..obs.export import stage_attribution
from ..obs.instrument import arm_testbed, bind_testbed_metrics
from ..sim.clock import MS
from .four_stacks import STACKS, _build_stack
from .report import fmt_ns, print_table

__all__ = ["ObsResult", "STAGE_ORDER", "measure_obs_stack",
           "render_obs_attribution", "write_trace_artifact",
           "run_obs_attribution", "TRACE_ARTIFACT"]

#: default location of the Perfetto artifact (relative to the cwd the
#: runner was started from)
TRACE_ARTIFACT = "results/e20_trace.json"

#: per-stack stage ordering for the attribution tables (request order)
STAGE_ORDER: dict[str, tuple[str, ...]] = {
    "linux": ("wire.req", "nic.rx", "os.softirq", "os.socket", "app",
              "os.tx", "nic.tx", "wire.resp"),
    "snap": ("wire.req", "nic.rx", "app", "nic.tx", "wire.resp"),
    "bypass": ("wire.req", "nic.rx", "app", "nic.tx", "wire.resp"),
    "lauberhorn": ("wire.req", "nic.rx", "nic.dispatch", "app",
                   "nic.egress", "nic.tx", "wire.resp"),
}


@dataclass(frozen=True)
class ObsResult:
    """One stack's armed-vs-unarmed comparison."""

    stack: str
    n_requests: int
    p50_rtt_ns: float
    #: {stage name: (count, mean ns)} from the armed run's spans
    stages: dict = field(default_factory=dict)
    #: spans as ``Span.as_dict()`` dicts (JSON-able, export-ready)
    spans: list = field(default_factory=list)
    #: armed RTT list == unarmed RTT list, element for element
    identical: bool = True
    #: span-tree integrity violations (must be empty)
    violations: list = field(default_factory=list)
    #: host wall-clock seconds for the unarmed / armed runs
    host_s_unarmed: float = 0.0
    host_s_armed: float = 0.0
    #: number of metric rows a full registry snapshot yields
    metric_rows: int = 0

    @property
    def overhead_pct(self) -> float:
        if self.host_s_unarmed <= 0:
            return 0.0
        return 100.0 * (self.host_s_armed / self.host_s_unarmed - 1.0)


def _drive(bed, service, method, n_requests: int) -> list[float]:
    """The E11 echo workload: warmup call + ``n_requests`` pipelined."""
    client = bed.clients[0]
    rtts: list[float] = []

    def driver():
        yield bed.sim.timeout(10_000)
        yield from client.call(args=[0], **bed.call_args(service, method))
        events = [
            client.send_request(
                bed.server_mac, bed.server_ip, service.udp_port,
                service.service_id, method.method_id, [i],
            )
            for i in range(n_requests)
        ]
        for event in events:
            result = yield event
            rtts.append(result.rtt_ns)

    bed.sim.process(driver())
    bed.machine.run(until=2000 * MS)
    return rtts


def measure_obs_stack(stack: str, n_requests: int = 25) -> ObsResult:
    """Run one stack unarmed then armed; compare and attribute."""
    started = time.perf_counter()
    bed, service, method = _build_stack(stack)
    base_rtts = _drive(bed, service, method, n_requests)
    host_s_unarmed = time.perf_counter() - started

    started = time.perf_counter()
    bed, service, method = _build_stack(stack)
    recorder = arm_testbed(bed)
    registry = bind_testbed_metrics(bed, prefix=stack)
    armed_rtts = _drive(bed, service, method, n_requests)
    host_s_armed = time.perf_counter() - started

    summary = _percentile(armed_rtts, 0.50)
    return ObsResult(
        stack=stack,
        n_requests=n_requests,
        p50_rtt_ns=summary,
        stages={name: list(stat) for name, stat in
                stage_attribution(recorder.spans).items()},
        spans=[span.as_dict() for span in recorder.spans],
        identical=armed_rtts == base_rtts,
        violations=recorder.check_integrity(),
        host_s_unarmed=host_s_unarmed,
        host_s_armed=host_s_armed,
        metric_rows=len(registry.snapshot()),
    )


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def render_obs_attribution(results: list["ObsResult"]) -> None:
    """The E20 artifact: one attribution table per stack + a summary."""
    for result in results:
        known = STAGE_ORDER.get(result.stack, ())
        stages = dict(result.stages)
        ordered = [name for name in known if name in stages]
        ordered += sorted(name for name in stages
                          if name not in known and name != "rpc")
        rpc_count, rpc_mean = stages.get("rpc", (result.n_requests + 1,
                                                 result.p50_rtt_ns))
        rows = []
        for name in ordered:
            count, mean = stages[name]
            share = 100.0 * mean / rpc_mean if rpc_mean else 0.0
            rows.append((name, str(count), fmt_ns(mean), f"{share:5.1f}%"))
        rows.append(("rpc (total)", str(rpc_count), fmt_ns(rpc_mean), "100.0%"))
        print_table(
            ["stage", "count", "mean", "of RTT"],
            rows,
            title=f"{result.stack} — per-stage latency attribution",
        )
    print_table(
        ["stack", "spans", "metrics", "RTTs identical", "violations",
         "host overhead"],
        [(r.stack, str(len(r.spans)), str(r.metric_rows),
          "yes" if r.identical else "NO", str(len(r.violations)),
          f"{r.overhead_pct:+.0f}%") for r in results],
        title="Tracing overhead — armed vs unarmed (sim results must "
              "not move)",
    )


def write_trace_artifact(results: list["ObsResult"],
                         path: str = TRACE_ARTIFACT) -> dict:
    """Write all stacks' spans as one Perfetto-loadable trace file."""
    import os

    from ..obs.export import export_chrome_trace

    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    return export_chrome_trace(
        path, {result.stack: result.spans for result in results}
    )


def run_obs_attribution(n_requests: int = 25, verbose: bool = True,
                        trace_path: str = TRACE_ARTIFACT) -> list[ObsResult]:
    results = [measure_obs_stack(stack, n_requests) for stack in STACKS]
    if verbose:
        render_obs_attribution(results)
        payload = write_trace_artifact(results, trace_path)
        print(f"\n[wrote {trace_path}: {len(payload['traceEvents'])} "
              f"trace events]")
    return results
