"""E9 — Section 6: nested RPCs with continuation end-points.

"Nested RPCs will benefit from the ability to rapidly create a
dedicated end-point for an RPC reply.  Fine-grained interaction with
the NIC should make creating this continuation a cheap operation with
significant performance benefits."

Scenario: service A's handler must call service B (co-located behind
the same NIC, reached through the switch) before answering its client.

* **Lauberhorn**: A's worker acquires a continuation end-point from a
  pre-allocated pool, PIO-transmits the nested request, and stalls on
  the continuation's CONTROL line; B's user loop serves the request;
  the reply is delivered straight into A's blocked load.
* **Linux**: A's worker does the same dance over sockets: sendmsg to
  B, blocking recvmsg on a reply socket, with the full kernel stack on
  both directions of the inner call.

Reported: client RTT of the outer (nested) call.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.histogram import LatencyRecorder
from ..nic.lauberhorn import EndpointKind, wire
from ..os import ops
from ..os.nicsched import (
    _gather_payload,
    lauberhorn_nested_call,
    lauberhorn_user_loop,
)
from ..rpc.marshal import marshal_args, unmarshal_args
from ..rpc.message import RpcMessage, RpcType
from ..rpc.server import linux_udp_worker
from ..sim.clock import MS
from .report import fmt_ns, print_table
from .testbed import build_lauberhorn_testbed, build_linux_testbed

__all__ = ["NestedResult", "run_nested_rpc"]

A_PORT, B_PORT = 9000, 9001
HANDLER_COST = 300


@dataclass(frozen=True)
class NestedResult:
    stack: str
    p50_rtt_ns: float
    mean_rtt_ns: float


def _lauberhorn_nested_worker(bed, ep_a, svc_b, m_b):
    """Service A's worker: Figure 4 loop + nested call to B."""
    nic, registry = bed.nic, bed.registry
    parity = 0
    while True:
        line_data = yield ops.LoadLine(ep_a.ctrl_addrs[parity])
        line = wire.decode_request_line(line_data)
        if line.is_retire:
            return
        if line.is_tryagain:
            yield ops.EvictLine(ep_a.ctrl_addrs[parity])
            continue
        payload = yield from _gather_payload(nic, ep_a, line)
        args = unmarshal_args(payload) if payload else []
        yield ops.Exec(HANDLER_COST)
        inner = yield from lauberhorn_nested_call(
            nic, B_PORT, svc_b.service_id, m_b.method_id, args
        )
        resp_payload = marshal_args(list(inner) + ["via-A"])
        ctrl, aux = wire.encode_response(ep_a.line_bytes, line.tag, resp_payload)
        for index, chunk in enumerate(aux):
            yield ops.StoreLine(ep_a.resp_aux_addrs[index], chunk)
        yield ops.StoreLine(ep_a.ctrl_addrs[parity], ctrl)
        parity ^= 1


def _linux_nested_worker(bed, socket_a, reply_socket, svc_b, m_b):
    """Service A's worker over sockets, calling B through the kernel."""
    next_inner_id = [1]
    while True:
        datagram = yield ops.RecvFromSocket(socket_a)
        message = RpcMessage.unpack(datagram.payload)
        if message.header.rpc_type is not RpcType.REQUEST:
            continue
        args = unmarshal_args(message.payload) if message.payload else []
        yield ops.Exec(HANDLER_COST)
        inner_id = next_inner_id[0]
        next_inner_id[0] += 1
        inner_req = RpcMessage.request(
            svc_b.service_id, m_b.method_id, inner_id, marshal_args(args)
        )
        yield ops.SendDatagram(
            reply_socket, dst_ip=bed.server_ip, dst_port=B_PORT,
            payload=inner_req.pack(),
        )
        inner_datagram = yield ops.RecvFromSocket(reply_socket)
        inner_resp = RpcMessage.unpack(inner_datagram.payload)
        inner = unmarshal_args(inner_resp.payload) if inner_resp.payload else []
        outer = RpcMessage.response(
            message.header.service_id, message.header.method_id,
            message.header.request_id, marshal_args(list(inner) + ["via-A"]),
        )
        yield ops.SendDatagram(
            socket_a, dst_ip=datagram.src_ip, dst_port=datagram.src_port,
            payload=outer.pack(),
        )


def _measure(bed, service, method, n: int) -> LatencyRecorder:
    client = bed.clients[0]
    recorder = LatencyRecorder()

    def driver():
        yield bed.sim.timeout(10_000)
        for i in range(n + 1):
            result = yield from client.call(
                args=[i], **bed.call_args(service, method)
            )
            if i > 0:  # drop the cold first call
                recorder.record(result.rtt_ns)

    bed.sim.process(driver())
    bed.machine.run(until=4000 * MS)
    return recorder


def run_nested_rpc(n_requests: int = 15, verbose: bool = True) -> list[NestedResult]:
    results = []

    # Lauberhorn.
    bed = build_lauberhorn_testbed()
    svc_a = bed.registry.create_service("frontend", udp_port=A_PORT)
    m_a = bed.registry.add_method(svc_a, "handle", lambda a: list(a))
    svc_b = bed.registry.create_service("backend", udp_port=B_PORT)
    m_b = bed.registry.add_method(
        svc_b, "lookup", lambda a: [f"b({a[0]})"], cost_instructions=HANDLER_COST
    )
    proc_a = bed.kernel.spawn_process("frontend")
    proc_b = bed.kernel.spawn_process("backend")
    bed.nic.register_service(svc_a, proc_a.pid)
    bed.nic.register_service(svc_b, proc_b.pid)
    bed.nic.create_continuation_pool(4)
    ep_a = bed.nic.create_endpoint(EndpointKind.USER, service=svc_a)
    ep_b = bed.nic.create_endpoint(EndpointKind.USER, service=svc_b)
    bed.kernel.spawn_thread(
        proc_a, _lauberhorn_nested_worker(bed, ep_a, svc_b, m_b),
        name="frontend", pinned_core=0,
    )
    bed.kernel.spawn_thread(
        proc_b, lauberhorn_user_loop(bed.nic, ep_b, bed.registry),
        name="backend", pinned_core=1,
    )
    summary = _measure(bed, svc_a, m_a, n_requests).summary()
    results.append(NestedResult("lauberhorn", summary.p50, summary.mean))

    # Linux.
    bed = build_linux_testbed()
    bed.netstack.add_neighbor(bed.server_ip, bed.server_mac)  # self-route
    svc_a = bed.registry.create_service("frontend", udp_port=A_PORT)
    m_a = bed.registry.add_method(svc_a, "handle", lambda a: list(a))
    svc_b = bed.registry.create_service("backend", udp_port=B_PORT)
    m_b = bed.registry.add_method(
        svc_b, "lookup", lambda a: [f"b({a[0]})"], cost_instructions=HANDLER_COST
    )
    socket_a = bed.netstack.bind(A_PORT)
    socket_b = bed.netstack.bind(B_PORT)
    reply_socket = bed.netstack.bind(52_000)
    proc_a = bed.kernel.spawn_process("frontend")
    proc_b = bed.kernel.spawn_process("backend")
    bed.kernel.spawn_thread(
        proc_a, _linux_nested_worker(bed, socket_a, reply_socket, svc_b, m_b),
        name="frontend",
    )
    bed.kernel.spawn_thread(
        proc_b, linux_udp_worker(socket_b, bed.registry), name="backend",
    )
    summary = _measure(bed, svc_a, m_a, n_requests).summary()
    results.append(NestedResult("linux", summary.p50, summary.mean))

    if verbose:
        print_table(
            ["stack", "p50 nested RTT", "mean nested RTT"],
            [(r.stack, fmt_ns(r.p50_rtt_ns), fmt_ns(r.mean_rtt_ns))
             for r in results],
            title="Section 6 — nested RPC (A -> B) with continuation "
                  "end-points vs sockets",
        )
    return results
