"""Plain-text table rendering for experiment output.

Every experiment returns structured rows and can print them in the
shape of the paper's table/figure series, so a bench run reproduces the
artifact on stdout.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "print_table", "fmt_ns"]


def fmt_ns(value_ns: float) -> str:
    """Human-readable duration."""
    if value_ns >= 1e6:
        return f"{value_ns / 1e6:.2f} ms"
    if value_ns >= 1e3:
        return f"{value_ns / 1e3:.2f} us"
    return f"{value_ns:.0f} ns"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers, rows, title: str = "") -> None:
    print()
    print(format_table(headers, rows, title))
