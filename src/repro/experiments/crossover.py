"""E5 — Section 6: the line-transfer vs DMA crossover (~4 KiB).

"For large messages, the direct, low-latency approach becomes less
efficient and it is best to revert back to DMA-based transfers since
throughput comes to dominate over latency.  The trade-off will depend
on the platform, empirically for Enzian this happens at about 4KiB."

We sweep request payload size and measure client-observed RTT twice:
once forcing cache-line delivery (threshold = infinity) and once
forcing DMA fallback (threshold = 0).  The handler returns a tiny ack
so the receive direction dominates.  The reported crossover is the
smallest size at which DMA wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..hw.params import ENZIAN, MachineParams
from ..nic.lauberhorn import EndpointKind
from ..os.nicsched import lauberhorn_user_loop
from ..sim.clock import MS
from ..workloads.distributions import args_for_payload
from .report import fmt_ns, print_table
from .testbed import build_lauberhorn_testbed

__all__ = ["CrossoverPoint", "assemble_crossover", "render_crossover",
           "run_crossover", "measure_rtt_for_size"]

DEFAULT_SIZES = (64, 128, 256, 512, 1024, 2048, 4096, 6144, 8192, 16384)


@dataclass(frozen=True)
class CrossoverPoint:
    payload_bytes: int
    line_rtt_ns: float
    dma_rtt_ns: float

    @property
    def dma_wins(self) -> bool:
        return self.dma_rtt_ns < self.line_rtt_ns


def measure_rtt_for_size(
    payload_bytes: int,
    force_dma: bool,
    params: MachineParams = ENZIAN,
    n: int = 5,
) -> float:
    """Mean steady RTT for one payload size under one delivery mode."""
    # AUX capacity must cover the largest line-delivered payload.
    line = params.interconnect.line_bytes
    n_aux = min(255, -(-payload_bytes // line) + 2)
    bed = build_lauberhorn_testbed(
        params=params,
        n_aux=n_aux,
        dma_threshold_bytes=(0 if force_dma else 1 << 30),
    )
    # Only the *request* direction is being forced; tiny acks must not
    # take the response DMA staging path.
    bed.nic.response_dma_threshold_bytes = 1 << 30
    service = bed.registry.create_service("sink", udp_port=9000)
    method = bed.registry.add_method(
        service, "sink", lambda args: ["ok"], cost_instructions=100
    )
    process = bed.kernel.spawn_process("sink")
    bed.nic.register_service(service, process.pid)
    endpoint = bed.nic.create_endpoint(
        EndpointKind.USER, service=service, n_aux=n_aux
    )
    bed.kernel.spawn_thread(
        process, lauberhorn_user_loop(bed.nic, endpoint, bed.registry),
        pinned_core=0,
    )
    client = bed.clients[0]
    args = args_for_payload(payload_bytes)
    rtts: list[float] = []

    def driver():
        yield bed.sim.timeout(10_000)
        for _ in range(n + 1):
            result = yield from client.call(
                args=args, **bed.call_args(service, method)
            )
            rtts.append(result.rtt_ns)

    bed.sim.process(driver())
    bed.machine.run(until=4000 * MS)
    steady = rtts[1:]
    return sum(steady) / len(steady)


def assemble_crossover(
    sizes, line_rtts, dma_rtts,
) -> tuple[list[CrossoverPoint], Optional[int]]:
    """Combine per-(size, mode) RTTs into the sweep result."""
    points = [
        CrossoverPoint(payload_bytes=size, line_rtt_ns=line, dma_rtt_ns=dma)
        for size, line, dma in zip(sizes, line_rtts, dma_rtts)
    ]
    crossover = next((p.payload_bytes for p in points if p.dma_wins), None)
    return points, crossover


def render_crossover(
    points: list[CrossoverPoint],
    crossover: Optional[int],
    machine_name: str = ENZIAN.name,
) -> None:
    sizes = [p.payload_bytes for p in points]
    print_table(
        ["payload", "line path RTT", "DMA path RTT", "winner"],
        [
            (f"{p.payload_bytes} B", fmt_ns(p.line_rtt_ns),
             fmt_ns(p.dma_rtt_ns), "DMA" if p.dma_wins else "lines")
            for p in points
        ],
        title=f"Section 6 — delivery-mechanism crossover on {machine_name}",
    )
    print(f"\ncrossover: DMA first wins at "
          f"{crossover if crossover else '>' + str(sizes[-1])} B "
          f"(paper: ~4 KiB on Enzian)")


def run_crossover(
    sizes=DEFAULT_SIZES,
    params: MachineParams = ENZIAN,
    verbose: bool = True,
) -> tuple[list[CrossoverPoint], Optional[int]]:
    """Sweep sizes; return (points, crossover_size_or_None)."""
    points, crossover = assemble_crossover(
        sizes,
        [measure_rtt_for_size(s, force_dma=False, params=params) for s in sizes],
        [measure_rtt_for_size(s, force_dma=True, params=params) for s in sizes],
    )
    if verbose:
        render_crossover(points, crossover, machine_name=params.name)
    return points, crossover
