"""E24 — multi-tenant isolation: noisy neighbours on a shared NIC.

The paper's NIC-as-OS argument is only honest under contention:
OSMOSIS (PAPERS.md) shows a shared SmartNIC without per-tenant
isolation lets one tenant's burst wreck everyone else's tail.  E24
measures exactly that on the Lauberhorn demux path: a *calm victim*
tenant (modest open-loop load) shares the NIC with an *aggressor*
running one of three interference patterns, with the
:mod:`repro.tenancy` machinery either accounting-only (``off``) or
enforcing budgets + DWRR + rate limits (``on``):

* **storm** — encrypted near-DMA-threshold payloads faster than the
  RX pipeline can crypt+deserialise them: the serial demux loop
  saturates and the overflow preempts the victim's armed loop with
  Tryagain bounces;
* **dmaflood** — encrypted >4 KiB payloads: every delivery also drags
  the DMA fallback machinery into the picture;
* **rateviol** — a flat-out small-request flood far above the
  tenant's contracted rate, aimed at a deliberately slow handler so
  backlogs (and preemption pressure) build.

Every cell runs under the full invariant battery *plus* the tenant
isolation checks (conservation, budget caps, ledger reconciliation,
DWRR fairness) — a cell only counts with zero violations.  The
headline table is victim p99.9 with isolation vs. without vs. solo:
with budgets + rate limits the victim's tail stays within 2x its solo
run while the unisolated baseline blows far past it, because policed
aggressor frames cost only parse+demux (~40 ns) instead of the full
crypt+deserialise pipeline.

Two sections: ``single`` (one Lauberhorn host, tenant-count x pattern
x isolation grid) and ``fleet`` (2-ToR rack, victim replicated on two
hosts, aggressor pounding one of them).

Artifact: ``results/e24_tenancy.json`` (schema-checked by
:func:`validate_tenancy_payload`).
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field

from ..check import install_checks, install_fleet_checks
from ..fleet import HostSpec, build_fleet
from ..net.topology import TopologySpec
from ..sim.clock import MS
from ..tenancy import TenantTable
from ..workloads.distributions import args_for_payload
from ..workloads.generator import OpenLoopGenerator, ServiceMix, Target
from .report import fmt_ns, print_table
from .testbed import build_lauberhorn_testbed, deploy_service

__all__ = ["TenancyCell", "TENANCY_ARTIFACT", "SINGLE_LABELS", "FLEET_LABELS",
           "cell_labels", "measure_single_cell", "measure_fleet_cell",
           "render_tenancy", "write_tenancy_artifact",
           "validate_tenancy_payload", "run_tenancy"]

#: default location of the JSON artifact (relative to the runner's cwd)
TENANCY_ARTIFACT = "results/e24_tenancy.json"

HORIZON_NS = 50 * MS
FLEET_HORIZON_NS = 60 * MS

#: the calm victim: open-loop Poisson, far below NIC capacity
VICTIM_RATE = 50_000.0
VICTIM_REQUESTS = 100
VICTIM_COST = 500

#: light bystander tenants for the 4-tenant cells
BYSTANDER_RATE = 10_000.0
BYSTANDER_REQUESTS = 20

#: aggressor interference patterns (payload size, inline AEAD, send
#: rate, frame count, handler cost in instructions)
PATTERNS = {
    # RX-pipeline saturation: crypto+deserialise of a 3968 B encrypted
    # payload (~540 ns) outruns its wire time (~320 ns), so the serial
    # demux loop falls behind at 2.5 Mfps and queueing explodes.
    "storm": dict(payload=3968, encrypted=True, rate=2.5e6, count=6000,
                  cost=2000),
    # Same saturation but through the >4 KiB DMA fallback, charging
    # the dma_fallbacks ledger on every delivery.
    "dmaflood": dict(payload=6144, encrypted=True, rate=1.8e6, count=4500,
                     cost=2000),
    # Cheap frames way over the contracted rate into a slow handler:
    # backlog overflow + preemption pressure, not pipeline saturation.
    "rateviol": dict(payload=64, encrypted=False, rate=2.0e6, count=5000,
                     cost=20_000),
}

#: enforcement applied to the aggressor when isolation is ``on``
AGGRESSOR_RATE_LIMIT = 50_000.0
AGGRESSOR_BURST = 16.0
AGGRESSOR_BUDGET = 4

TENANT_COUNTS = (2, 4)

SINGLE_LABELS = tuple(
    ["solo"] + [f"{nt}t-{pattern}-{iso}"
                for nt in TENANT_COUNTS
                for pattern in PATTERNS
                for iso in ("off", "on")]
)
FLEET_LABELS = ("solo", "storm-off", "storm-on")
SECTIONS = ("single", "fleet")


def cell_labels(section: str) -> tuple[str, ...]:
    return {"single": SINGLE_LABELS, "fleet": FLEET_LABELS}[section]


@dataclass(frozen=True)
class TenancyCell:
    """One measured tenancy configuration (JSON-able)."""

    section: str
    label: str
    tenants: list
    pattern: str            # "" for solo cells
    isolated: bool
    n_victim: int
    victim_completed: int
    victim_p50_ns: float
    victim_p99_ns: float
    victim_p999_ns: float
    aggressor_sent: int = 0
    aggressor_completed: int = 0
    #: flat per-tenant ledger (``TenantTable.snapshot`` of host 0)
    ledger: dict = field(default_factory=dict)
    #: tenant invariant violations recorded over the run (must be 0)
    violations: int = 0
    check_samples: int = 0


def _parse_label(label: str) -> tuple[int, str, bool]:
    """``"4t-storm-on"`` -> (4, "storm", True); solo -> (1, "", True)."""
    if label == "solo":
        return 1, "", True
    nt, pattern, iso = label.split("-")
    return int(nt.rstrip("t")), pattern, iso == "on"


def _build_table(n_tenants: int, pattern: str, isolated: bool) -> TenantTable:
    """Victim + aggressor (+ bystanders); ``isolated`` turns on the
    aggressor's budget and rate limit and weights the victim up."""
    table = TenantTable()
    table.create("victim", weight=2.0 if isolated else 1.0)
    if pattern:
        if isolated:
            table.create("aggressor", weight=1.0,
                         ctrl_budget=AGGRESSOR_BUDGET,
                         rate_limit_rps=AGGRESSOR_RATE_LIMIT,
                         rate_burst=AGGRESSOR_BURST)
        else:
            table.create("aggressor", weight=1.0)
    for index in range(max(0, n_tenants - 2)):
        table.create(f"bystander{index}", weight=1.0)
    return table


def _percentile(samples: list, q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _fire_and_forget(sim, client, server_mac, server_ip, service, method,
                     args, rate: float, count: int, rng, done: list,
                     start_delay_ns: float = 200_000.0):
    """Aggressor body: blast ``count`` requests open-loop, never waiting
    for completions (rate-policed frames never complete by design)."""
    gap = 1e9 / rate

    def run():
        yield sim.timeout(start_delay_ns)
        for _ in range(count):
            event = client.send_request(
                server_mac, server_ip, service.udp_port,
                service.service_id, method.method_id, args,
            )
            event.add_callback(lambda ev: done.append(1))
            yield sim.timeout(rng.expovariate(1.0) * gap)

    sim.process(run(), name="e24-aggressor")


def measure_single_cell(label: str, seed: int = 0) -> TenancyCell:
    """Build, tenant-arm, invariant-arm, and drive one single-host cell."""
    n_tenants, pattern, isolated = _parse_label(label)
    bed = build_lauberhorn_testbed(n_clients=4, seed=seed,
                                   preempt_on_backlog=True)
    table = _build_table(n_tenants, pattern, isolated)
    bed.nic.attach_tenants(table)

    victim_service, victim_method = deploy_service(
        bed, "lauberhorn", name="victim", udp_port=9000,
        cost_instructions=VICTIM_COST, core=0, tenant="victim")
    generators = []
    aggressor_sent = 0
    aggressor_done: list = []
    if pattern:
        config = PATTERNS[pattern]
        aggr_service, aggr_method = deploy_service(
            bed, "lauberhorn", name="aggr", udp_port=9100,
            cost_instructions=config["cost"], core=1, tenant="aggressor",
            encrypted=config["encrypted"])
        _fire_and_forget(
            bed.sim, bed.clients[1], bed.server_mac, bed.server_ip,
            aggr_service, aggr_method, args_for_payload(config["payload"]),
            config["rate"], config["count"], random.Random(seed + 17),
            aggressor_done)
        aggressor_sent = config["count"]
    for index in range(n_tenants - 2):
        by_service, by_method = deploy_service(
            bed, "lauberhorn", name=f"bystander{index}",
            udp_port=9200 + index, cost_instructions=VICTIM_COST,
            core=2 + index, tenant=f"bystander{index}")
        gen = OpenLoopGenerator(
            bed.clients[2 + index],
            ServiceMix([Target(by_service, by_method)]),
            bed.server_mac, bed.server_ip, random.Random(seed + 31 + index))
        bed.sim.process(gen.run(BYSTANDER_RATE, BYSTANDER_REQUESTS))
        generators.append(gen)

    checks = install_checks(bed)
    checks.start(HORIZON_NS)
    victim_gen = OpenLoopGenerator(
        bed.clients[0], ServiceMix([Target(victim_service, victim_method)]),
        bed.server_mac, bed.server_ip, random.Random(seed + 1))
    bed.sim.process(victim_gen.run(VICTIM_RATE, VICTIM_REQUESTS))
    bed.sim.run(until=HORIZON_NS)
    checks.finish()

    rtts = victim_gen.recorder.samples
    return TenancyCell(
        section="single",
        label=label,
        tenants=[spec.name for spec in table],
        pattern=pattern,
        isolated=isolated,
        n_victim=VICTIM_REQUESTS,
        victim_completed=victim_gen.completed,
        victim_p50_ns=_percentile(rtts, 0.50),
        victim_p99_ns=_percentile(rtts, 0.99),
        victim_p999_ns=_percentile(rtts, 0.999),
        aggressor_sent=aggressor_sent,
        aggressor_completed=len(aggressor_done),
        ledger=table.snapshot(),
        violations=len(checks.violations),
        check_samples=checks.samples,
    )


FLEET_VICTIM_REQUESTS = 120
FLEET_VICTIM_FLOWS = 8


def measure_fleet_cell(label: str, seed: int = 0) -> TenancyCell:
    """2-ToR rack: the victim service replicated on both Lauberhorn
    hosts, the aggressor pounding host 0 only — cross-host blast
    radius of one noisy tenant."""
    solo = label == "solo"
    isolated = label.endswith("-on")
    pattern = "" if solo else "storm"
    fleet = build_fleet(
        [HostSpec(stack="lauberhorn", tor=0),
         HostSpec(stack="lauberhorn", tor=1)],
        topo=TopologySpec(n_tors=2),
        n_clients=2,
        seed=seed,
    )
    tables = []
    for host in fleet.hosts:
        table = _build_table(2, pattern or "storm", isolated)
        host.nic.attach_tenants(table)
        tables.append(table)

    aggressor_sent = 0
    aggressor_done: list = []
    host0 = fleet.hosts[0]
    aggr_service, aggr_method = deploy_service(
        host0, "lauberhorn", name="aggr", udp_port=9100,
        cost_instructions=PATTERNS["storm"]["cost"], core=1,
        tenant="aggressor", encrypted=PATTERNS["storm"]["encrypted"])
    fleet.deploy(name="victim", udp_port=9000,
                 cost_instructions=VICTIM_COST, tenant="victim")

    checks = install_fleet_checks(fleet)
    checks.start(FLEET_HORIZON_NS)

    rtts: list = []
    completed: list = []

    def victim_loop():
        rng = random.Random(seed + 1)
        gap = 1e9 / VICTIM_RATE
        for k in range(FLEET_VICTIM_REQUESTS):
            event = fleet.send(fleet.clients[0],
                               41000 + (k % FLEET_VICTIM_FLOWS), [k])

            def note(ev):
                completed.append(1)
                rtts.append(ev.value.rtt_ns)

            event.add_callback(note)
            yield fleet.sim.timeout(rng.expovariate(1.0) * gap)

    fleet.sim.process(victim_loop(), name="e24-fleet-victim")
    if not solo:
        config = PATTERNS["storm"]
        _fire_and_forget(
            fleet.sim, fleet.clients[1], host0.server_mac, host0.server_ip,
            aggr_service, aggr_method, args_for_payload(config["payload"]),
            config["rate"], config["count"], random.Random(seed + 17),
            aggressor_done)
        aggressor_sent = config["count"]
    fleet.run(until=FLEET_HORIZON_NS)
    checks.finish()

    return TenancyCell(
        section="fleet",
        label=label,
        tenants=[spec.name for spec in tables[0]],
        pattern=pattern,
        isolated=isolated,
        n_victim=FLEET_VICTIM_REQUESTS,
        victim_completed=len(completed),
        victim_p50_ns=_percentile(rtts, 0.50),
        victim_p99_ns=_percentile(rtts, 0.99),
        victim_p999_ns=_percentile(rtts, 0.999),
        aggressor_sent=aggressor_sent,
        aggressor_completed=len(aggressor_done),
        ledger=tables[0].snapshot(),
        violations=len(checks.violations),
        check_samples=checks.samples,
    )


def render_tenancy(cells: list["TenancyCell"]) -> None:
    titles = {
        "single": "E24 — noisy neighbours on one Lauberhorn host",
        "fleet": "E24 — 2-ToR fleet, aggressor pounding one replica host",
    }
    for section in SECTIONS:
        rows = []
        for cell in cells:
            if cell.section != section:
                continue
            aggr_drops = cell.ledger.get("aggressor.rate_dropped", 0)
            rows.append((
                cell.label,
                f"{cell.victim_completed}/{cell.n_victim}",
                fmt_ns(cell.victim_p50_ns),
                fmt_ns(cell.victim_p99_ns),
                fmt_ns(cell.victim_p999_ns),
                str(cell.aggressor_completed),
                str(int(aggr_drops)),
                str(cell.violations),
            ))
        if rows:
            print_table(
                ["cell", "victim done", "v p50", "v p99", "v p99.9",
                 "aggr done", "policed", "violations"],
                rows,
                title=titles[section],
            )
            print()


def write_tenancy_artifact(cells: list["TenancyCell"],
                           path: str = TENANCY_ARTIFACT) -> dict:
    from ..exp.pool import jsonable

    payload = {
        "experiment": "e24",
        "horizon_ns": HORIZON_NS,
        "fleet_horizon_ns": FLEET_HORIZON_NS,
        "sections": list(SECTIONS),
        "cells": [jsonable(cell) for cell in cells],
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)
    return payload


def validate_tenancy_payload(payload: dict, complete: bool = True) -> None:
    """Schema/acceptance check for the E24 artifact; raises ValueError.

    Every cell: zero invariant violations and a fully-served victim.
    ``complete=True`` additionally demands the full grid and the
    isolation headline: for every tenant-count, the victim's p99.9
    under the aggressor's Tryagain storm stays within 2x its solo
    p99.9 when isolation is on, while the unisolated run exceeds that
    bound; isolated aggressors must show rate-limit policing and
    dmaflood cells must charge the DMA ledger.
    """
    problems: list[str] = []
    cells = payload.get("cells")
    if not isinstance(cells, list) or not cells:
        raise ValueError("payload has no 'cells' list")
    by_key = {}
    for cell in cells:
        tag = f"{cell.get('section')}/{cell.get('label')}"
        by_key[(cell.get("section"), cell.get("label"))] = cell
        for key in ("section", "label", "tenants", "victim_completed",
                    "victim_p999_ns", "ledger", "violations"):
            if key not in cell:
                problems.append(f"{tag}: missing {key}")
        if cell.get("violations", 1) != 0:
            problems.append(
                f"{tag}: {cell.get('violations')} invariant violation(s)")
        if cell.get("victim_completed") != cell.get("n_victim"):
            problems.append(
                f"{tag}: victim completed {cell.get('victim_completed')} "
                f"of {cell.get('n_victim')} requests")
        ledger = cell.get("ledger", {})
        if cell.get("isolated") and cell.get("pattern"):
            if ledger.get("aggressor.rate_dropped", 0) <= 0:
                problems.append(f"{tag}: isolated aggressor was never "
                                "rate-policed")
        if cell.get("pattern") == "dmaflood":
            if ledger.get("aggressor.dma_fallbacks", 0) <= 0:
                problems.append(f"{tag}: dmaflood charged no DMA fallbacks")
    if complete:
        wanted = {(section, label) for section in SECTIONS
                  for label in cell_labels(section)}
        missing = wanted - set(by_key)
        if missing:
            problems.append(f"missing cells: {sorted(missing)}")

        def headline(section: str, solo_label: str, on_label: str,
                     off_label: str) -> None:
            solo = by_key.get((section, solo_label))
            on = by_key.get((section, on_label))
            off = by_key.get((section, off_label))
            if not (solo and on and off):
                return
            bound = 2.0 * solo["victim_p999_ns"]
            if on["victim_p999_ns"] > bound:
                problems.append(
                    f"{section}/{on_label}: isolated victim p99.9 "
                    f"({on['victim_p999_ns']:.0f} ns) exceeds 2x solo "
                    f"({bound:.0f} ns)")
            if off["victim_p999_ns"] <= bound:
                problems.append(
                    f"{section}/{off_label}: unisolated victim p99.9 "
                    f"({off['victim_p999_ns']:.0f} ns) within 2x solo "
                    f"({bound:.0f} ns) — no interference to isolate")

        for nt in TENANT_COUNTS:
            headline("single", "solo", f"{nt}t-storm-on", f"{nt}t-storm-off")
        headline("fleet", "solo", "storm-on", "storm-off")
    if problems:
        raise ValueError("; ".join(problems))


def run_tenancy(verbose: bool = True, smoke: bool = False,
                artifact_path: str = TENANCY_ARTIFACT) -> list[TenancyCell]:
    """Serial runner; ``smoke=True`` is the CI headline-pair job."""
    if smoke:
        combos = [("single", "solo"), ("single", "2t-storm-off"),
                  ("single", "2t-storm-on")]
    else:
        combos = [(section, label) for section in SECTIONS
                  for label in cell_labels(section)]
    cells = []
    for section, label in combos:
        if section == "single":
            cells.append(measure_single_cell(label))
        else:
            cells.append(measure_fleet_cell(label))
    if verbose:
        render_tenancy(cells)
        payload = write_tenancy_artifact(cells, artifact_path)
        validate_tenancy_payload(payload, complete=not smoke)
        print(f"[wrote {artifact_path}: {len(payload['cells'])} cells]")
    return cells
