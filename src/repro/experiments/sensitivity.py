"""E18 — sensitivity: how fast must the coherent interconnect be?

The paper's bet is that coherent-interconnect round trips are (and will
stay) fast enough to beat descriptor DMA.  This experiment stresses the
bet: sweep the coherent link's one-way latency from CXL-class (125 ns)
through ECI-class (350 ns) to pessimistic (1.4 µs), measuring the
Lauberhorn hot-path RPC RTT at each point against a fixed PCIe bypass
baseline on the same machine class, and reports the **break-even**
one-way latency — the headroom behind "even the (comparatively slow)
ECI" winning.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from ..hw.params import ENZIAN, ENZIAN_PCIE
from ..nic.lauberhorn import EndpointKind
from ..os.nicsched import lauberhorn_user_loop
from ..rpc.server import bypass_worker
from ..sim.clock import MS
from .report import fmt_ns, print_table
from .testbed import build_bypass_testbed, build_lauberhorn_testbed

__all__ = ["SensitivityPoint", "lauberhorn_rtt_at", "bypass_baseline_rtt",
           "assemble_sensitivity", "render_sensitivity", "run_sensitivity"]

HANDLER_COST = 500


@dataclass(frozen=True)
class SensitivityPoint:
    one_way_ns: float
    lauberhorn_rtt_ns: float
    bypass_rtt_ns: float

    @property
    def lauberhorn_wins(self) -> bool:
        return self.lauberhorn_rtt_ns < self.bypass_rtt_ns


def _machine_with_link_latency(one_way_ns: float):
    interconnect = dataclasses.replace(
        ENZIAN.interconnect,
        one_way_ns=one_way_ns,
        mmio_read_ns=2 * one_way_ns,
        mmio_write_ns=one_way_ns,
    )
    return dataclasses.replace(ENZIAN, interconnect=interconnect)


def lauberhorn_rtt_at(one_way_ns: float, n: int = 8) -> float:
    """One sweep point: Lauberhorn RTT with the link at ``one_way_ns``."""
    bed = build_lauberhorn_testbed(params=_machine_with_link_latency(one_way_ns))
    service = bed.registry.create_service("s", udp_port=9000)
    method = bed.registry.add_method(service, "m", lambda a: [1],
                                     cost_instructions=HANDLER_COST)
    process = bed.kernel.spawn_process("s")
    bed.nic.register_service(service, process.pid)
    endpoint = bed.nic.create_endpoint(EndpointKind.USER, service=service)
    bed.kernel.spawn_thread(
        process, lauberhorn_user_loop(bed.nic, endpoint, bed.registry),
        pinned_core=0,
    )
    return _measure(bed, service, method, n)


def bypass_baseline_rtt(n: int = 8) -> float:
    """The fixed PCIe-bypass baseline every sweep point compares against."""
    bed = build_bypass_testbed(params=ENZIAN_PCIE)
    service = bed.registry.create_service("s", udp_port=9000)
    method = bed.registry.add_method(service, "m", lambda a: [1],
                                     cost_instructions=HANDLER_COST)
    bed.nic.steer_port(9000, 0)
    process = bed.kernel.spawn_process("pmd")
    bed.kernel.spawn_thread(
        process, bypass_worker(bed.nic, bed.nic.queues[0], bed.user_netctx,
                               bed.registry),
        pinned_core=0,
    )
    return _measure(bed, service, method, n)


def _measure(bed, service, method, n: int) -> float:
    client = bed.clients[0]
    rtts: list[float] = []

    def driver():
        yield bed.sim.timeout(10_000)
        for i in range(n + 1):
            result = yield from client.call(
                args=[i], **bed.call_args(service, method)
            )
            rtts.append(result.rtt_ns)

    bed.sim.process(driver())
    bed.machine.run(until=500 * MS)
    steady = rtts[1:]
    return sum(steady) / len(steady)


def assemble_sensitivity(
    one_way_sweep, lauberhorn_rtts, bypass_rtt,
) -> tuple[list[SensitivityPoint], Optional[float]]:
    """Combine per-point RTTs into the sweep result + break-even point."""
    points = [
        SensitivityPoint(
            one_way_ns=float(one_way),
            lauberhorn_rtt_ns=rtt,
            bypass_rtt_ns=bypass_rtt,
        )
        for one_way, rtt in zip(one_way_sweep, lauberhorn_rtts)
    ]
    break_even = next(
        (p.one_way_ns for p in points if not p.lauberhorn_wins), None
    )
    return points, break_even


def render_sensitivity(
    points: list[SensitivityPoint], break_even: Optional[float]
) -> None:
    print_table(
        ["coherent one-way", "lauberhorn RTT", "bypass/PCIe RTT", "winner"],
        [
            (fmt_ns(p.one_way_ns), fmt_ns(p.lauberhorn_rtt_ns),
             fmt_ns(p.bypass_rtt_ns),
             "lauberhorn" if p.lauberhorn_wins else "bypass")
            for p in points
        ],
        title="Sensitivity — coherent-link latency vs the PCIe bypass "
              "baseline (small RPC)",
    )
    if break_even is None:
        print("\nLauberhorn wins across the whole sweep "
              f"(up to {fmt_ns(points[-1].one_way_ns)} one-way).")
    else:
        print(f"\nbreak-even one-way latency ≈ {fmt_ns(break_even)} "
              "(ECI is 350 ns; CXL 3.0 ~125 ns — ample headroom).")


def run_sensitivity(
    one_way_sweep=(125, 250, 350, 500, 700, 1000, 1400),
    verbose: bool = True,
) -> tuple[list[SensitivityPoint], Optional[float]]:
    bypass_rtt = bypass_baseline_rtt()
    points, break_even = assemble_sensitivity(
        one_way_sweep,
        [lauberhorn_rtt_at(float(one_way)) for one_way in one_way_sweep],
        bypass_rtt,
    )
    if verbose:
        render_sensitivity(points, break_even)
    return points, break_even
