"""E16 — Section 3: the price of not trusting the NIC.

"the introduction of IOMMUs and SMMUs has led to a philosophy that, as
far as possible the NIC should not be trusted as a device.  This is an
anomaly, given that devices like disks, CPU cores, GPUs, and DRAM are,
for the most part, trusted."

This experiment puts a number on the anomaly: the per-DMA cost of
IOMMU translation for an *untrusted* descriptor NIC, across the IOTLB
pressure regimes a real receive ring produces:

* **trusted (no IOMMU)** — the paper's position for the NIC;
* **IOTLB-resident** — a small buffer pool that fits the 64-entry
  IOTLB: only lookup costs;
* **IOTLB-thrashing** — a 1024-descriptor ring cycling through more
  pages than the IOTLB holds: every access walks the page table;
* **strict unmap** — thrashing plus strict DMA-API semantics
  (invalidate on every completion), as hardened kernels configure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.iommu import PAGE_BYTES, Iommu, IommuParams
from ..hw.machine import Machine
from ..hw.params import ENZIAN_PCIE
from .report import fmt_ns, print_table

__all__ = ["IommuTaxResult", "run_iommu_tax"]

MESSAGE_BYTES = 64
BUFFER_BASE = 0x8000_0000


@dataclass(frozen=True)
class IommuTaxResult:
    config: str
    rtt_ns: float
    iotlb_hit_rate: float


def _dma_rtt(
    iommu_enabled: bool,
    pool_pages: int,
    strict: bool,
    n: int = 256,
) -> tuple[float, float]:
    """Mean DMA round trip over ``n`` IOs cycling a ``pool_pages`` pool."""
    machine = Machine(ENZIAN_PCIE)
    link = machine.link
    if iommu_enabled:
        link.iommu = Iommu(machine.sim, IommuParams())
    nic = machine.params.nic
    core = machine.cores[0]
    samples: list[float] = []

    def run():
        for index in range(n):
            addr = BUFFER_BASE + (index % pool_pages) * PAGE_BYTES
            start = machine.sim.now
            yield from core.execute(60)          # descriptor write
            yield from link.mmio_write(core)     # doorbell
            yield machine.sim.timeout(link.posted_delay_ns())
            yield from link.dma_read(nic.descriptor_bytes, addr=addr)
            yield from link.dma_read(MESSAGE_BYTES, addr=addr)
            yield machine.sim.timeout(nic.descriptor_process_ns)
            yield from link.dma_write(MESSAGE_BYTES, addr=addr)
            yield from link.dma_write(nic.descriptor_bytes, addr=addr)
            yield from core.dram_access()        # completion poll
            if strict and link.iommu is not None:
                # Strict DMA API: unmap + IOTLB invalidate per IO, paid
                # by the driver on the CPU.
                link.iommu.invalidate(addr, MESSAGE_BYTES)
                yield from core.execute(600)
            samples.append(machine.sim.now - start)

    machine.sim.process(run())
    machine.run()
    # Skip the pool-cold first pass.
    steady = samples[pool_pages:] or samples
    rtt = sum(steady) / len(steady)
    hit_rate = link.iommu.stats.hit_rate if link.iommu else 1.0
    return rtt, hit_rate


def run_iommu_tax(verbose: bool = True) -> list[IommuTaxResult]:
    configs = [
        ("trusted NIC (no IOMMU)",
         _dma_rtt(iommu_enabled=False, pool_pages=1024, strict=False)),
        ("IOMMU, IOTLB-resident pool (16 pages)",
         _dma_rtt(iommu_enabled=True, pool_pages=16, strict=False)),
        ("IOMMU, thrashing ring (1024 pages)",
         _dma_rtt(iommu_enabled=True, pool_pages=1024, strict=False)),
        ("IOMMU, thrashing + strict unmap",
         _dma_rtt(iommu_enabled=True, pool_pages=1024, strict=True)),
    ]
    results = [
        IommuTaxResult(config=name, rtt_ns=rtt, iotlb_hit_rate=hit)
        for name, (rtt, hit) in configs
    ]
    if verbose:
        print_table(
            ["configuration", "64 B DMA RTT", "IOTLB hit rate"],
            [(r.config, fmt_ns(r.rtt_ns), f"{r.iotlb_hit_rate:.2f}")
             for r in results],
            title="Section 3 — the IOMMU tax on an untrusted NIC",
        )
        base = results[0].rtt_ns
        worst = results[-1].rtt_ns
        print(f"\nnot trusting the NIC costs up to "
              f"{(worst - base) / base * 100:.0f}% per small DMA here; "
              "the trusted, coherent Lauberhorn path pays none of it.")
    return results
