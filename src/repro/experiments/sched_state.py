"""E8 — Section 4/5.2: the cost of sharing scheduling state.

"any other state can be explicitly pushed to the NIC via the
interconnect with negligible overhead" — this experiment quantifies
*negligible*.  We force a stream of context switches (two processes
ping-ponging on one core) and measure the per-switch cost with and
without the Lauberhorn scheduling-state push, then compare against
what the same update would cost over the alternatives a PCIe NIC
offers (posted MMIO write, MMIO read, descriptor DMA).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.params import ENZIAN, PCIE_GEN3
from ..os import ops
from ..sim.clock import MS
from .report import fmt_ns, print_table
from .testbed import build_lauberhorn_testbed

__all__ = ["SchedPushResult", "run_sched_state"]


@dataclass(frozen=True)
class SchedPushResult:
    context_switches: int
    base_switch_ns: float
    pushed_switch_ns: float
    push_overhead_ns: float
    push_overhead_pct: float
    alternatives: dict


def _switch_storm(with_push: bool, n_switches: int = 200) -> tuple[int, float]:
    """Run a ping-pong of two processes on one core; return
    (context_switches, busy_ns_on_core0)."""
    bed = build_lauberhorn_testbed()
    if not with_push:
        bed.nic.sched_push_instructions = 0

    def pinger():
        for _ in range(n_switches):
            yield ops.Exec(100)
            yield ops.YieldCpu()

    a = bed.kernel.spawn_process("a")
    b = bed.kernel.spawn_process("b")
    bed.kernel.spawn_thread(a, pinger(), pinned_core=0)
    bed.kernel.spawn_thread(b, pinger(), pinned_core=0)
    bed.machine.run(until=200 * MS)
    return bed.kernel.stats.context_switches, bed.machine.cores[0].counters.busy_ns


def run_sched_state(n_switches: int = 200, verbose: bool = True) -> SchedPushResult:
    switches_base, busy_base = _switch_storm(False, n_switches)
    switches_push, busy_push = _switch_storm(True, n_switches)
    base_ns = busy_base / switches_base
    push_ns = busy_push / switches_push
    overhead = push_ns - base_ns

    core = ENZIAN.core
    alternatives = {
        "coherent posted line store (Lauberhorn)": overhead,
        "PCIe posted MMIO write": 20.0,          # core-side cost only
        "PCIe MMIO read (synchronous)": PCIE_GEN3.mmio_read_ns,
        "descriptor DMA enqueue (driver)": core.frequency.cycles_to_ns(
            200 * core.cpi
        ),
    }
    result = SchedPushResult(
        context_switches=switches_push,
        base_switch_ns=base_ns,
        pushed_switch_ns=push_ns,
        push_overhead_ns=overhead,
        push_overhead_pct=100.0 * overhead / base_ns,
        alternatives=alternatives,
    )
    if verbose:
        print_table(
            ["metric", "value"],
            [
                ("context switches measured", result.context_switches),
                ("switch cost, no push", fmt_ns(result.base_switch_ns)),
                ("switch cost, with push", fmt_ns(result.pushed_switch_ns)),
                ("push overhead", fmt_ns(result.push_overhead_ns)),
                ("push overhead %", f"{result.push_overhead_pct:.1f}%"),
            ],
            title="Section 5.2 — scheduling-state push cost per context switch",
        )
        print_table(
            ["mechanism", "core-side cost"],
            [(name, fmt_ns(ns)) for name, ns in alternatives.items()],
            title="Alternative push mechanisms",
        )
    return result
