"""E22 — policy-vs-policy control-plane tournaments.

The tentpole demonstration of :mod:`repro.ctrl`: every stack runs the
same open-loop echo load under E19-family fault plans, three ways —

* ``none``    — controller inert (and asserted **byte-identical** to a
  run with no controller, sampler, or registry at all: the strict
  no-regression contract, re-checked inside every tournament cell);
* ``backoff`` — AIMD admission control driven by Tryagain/retry
  storms;
* ``tuner``   — interrupt-moderation / polling-interval tuning from
  observed RX rate.

A second section runs the :class:`~repro.ctrl.migrate.EpochMigrator`:
a greedy chooser places the service across the four stacks epoch by
epoch from measured latency (paying a migration penalty on every
switch), against sticky single-stack baselines — ``dynamic_mix``'s
placement made automatic.

Artifact: ``results/e22_control.json`` (schema-checked by
:func:`validate_control_payload`).
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Optional

from ..ctrl import (
    Actuators,
    AdmissionGate,
    Controller,
    EpochMigrator,
    PolicySpec,
    sticky_chooser,
)
from ..faults import FaultPlan, active
from ..obs.instrument import bind_testbed_metrics
from ..obs.timeseries import TimeSeriesSampler
from ..sim.clock import MS
from ..sim.rng import derive_seed
from ..workloads.generator import OpenLoopGenerator, ServiceMix, Target
from .four_stacks import STACKS, _build_stack
from .report import fmt_ns, print_table

__all__ = ["ControlCell", "CONTROL_ARTIFACT", "FAULT_PLANS", "POLICY_SPECS",
           "measure_control_cell", "measure_adaptive_mix",
           "render_control", "write_control_artifact",
           "validate_control_payload", "run_control"]

#: default location of the JSON artifact (relative to the runner's cwd)
CONTROL_ARTIFACT = "results/e22_control.json"

WINDOW_NS = 500_000.0
MAX_WINDOWS = 128
HORIZON_NS = 30 * MS
N_REQUESTS = 96
#: ~one arrival per 50 µs: arrivals span ~5 ms, so several decision
#: epochs see live traffic and several see the drain
RATE_PER_SEC = 20e3

#: the two E19-family plans every tournament runs under (same
#: ``default,seed,loss,stall`` spec family as the E19 sweep, at rates
#: high enough that storms are visible at epoch granularity)
FAULT_PLANS: dict[str, str] = {
    "lossy": "default,seed={seed},loss=0.05",
    "storm": "default,seed={seed},loss=0.05,stall=0.05",
}

#: the tournament's policy column specs
POLICY_SPECS: dict[str, str] = {
    "none": "none",
    "backoff": "backoff,epoch=2,trigger=1,hold_step=20000",
    "tuner": "tuner,epoch=2,hi=8,lo=1",
}

#: adaptive-mix section parameters
MIX_EPOCHS = 6
MIX_REQUESTS = 16
MIX_HORIZON_NS = 12 * MS
MIX_PENALTY_NS = 500_000.0
MIX_PLAN = "default,seed={seed},loss=0.01"
MIX_BASELINES = ("linux", "lauberhorn")


@dataclass(frozen=True)
class ControlCell:
    """One (stack, plan, policy) tournament cell (JSON-able)."""

    stack: str
    plan: str
    policy: str
    n_requests: int
    completed: int
    p50_rtt_ns: float
    p99_rtt_ns: float
    #: client retransmissions + give-ups over the run
    retries: int
    #: Lauberhorn CONTROL-line Tryagain bounces (0 on other stacks)
    tryagains: int
    #: arrivals the admission gate deferred
    deferrals: int
    #: applied knob changes, in order
    actuations: list = field(default_factory=list)
    #: decision epochs the controller ran
    epochs: int = 0
    #: counter resets the sampler clamped (crash/restart telemetry)
    rate_resets: dict = field(default_factory=dict)
    #: ``none`` cells only: armed-but-inert run == bare run, RTT for RTT
    identical: Optional[bool] = None


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _drive(stack: str, plan: FaultPlan, spec: Optional[PolicySpec],
           rng_seed: int, n_requests: int, armed: bool = True):
    """One tournament run; returns (rtts, stats dict).

    ``armed=False`` builds nothing beyond the testbed and generator —
    the bare baseline the inert-controller run must match exactly.
    """
    with active(plan):
        bed, service, method = _build_stack(stack)
    client = bed.clients[0]
    mix = ServiceMix([Target(service, method, make_args=lambda rng: [1])])
    generator = OpenLoopGenerator(client, mix, bed.server_mac,
                                  bed.server_ip, random.Random(rng_seed))
    gate = None
    controller = None
    sampler = None
    if armed:
        registry = bind_testbed_metrics(bed)
        sampler = TimeSeriesSampler(bed.sim, registry, window_ns=WINDOW_NS,
                                    max_windows=MAX_WINDOWS)
        if spec is not None and not spec.inert:
            gate = AdmissionGate()
            generator.admission = gate
            actuators = Actuators(bed.sim, nic=bed.nic, gate=gate)
            controller = Controller(sampler, actuators, spec)
        sampler.start(HORIZON_NS)
    bed.sim.process(generator.run(RATE_PER_SEC, n_requests))
    bed.machine.run(until=HORIZON_NS)
    tryagains = 0
    if sampler is not None:
        sampler.finish()
        # Touch every counter's rate series so reset accounting is
        # populated for the artifact.
        for name in sampler.names():
            sampler.rate_series(name)
    lstats = getattr(bed.nic, "lstats", None)
    if lstats is not None:
        tryagains = lstats.tryagains
    stats = {
        "completed": generator.completed,
        "retries": client.retries + client.give_ups,
        "tryagains": tryagains,
        "deferrals": getattr(generator, "deferrals", 0),
        "actuations": (controller.actuation_log()
                       if controller is not None else []),
        "epochs": controller.epochs if controller is not None else 0,
        "rate_resets": dict(sampler.rate_resets) if sampler else {},
    }
    return list(generator.recorder.samples), stats


def measure_control_cell(stack: str, plan_label: str, policy: str,
                         seed: int = 0,
                         n_requests: int = N_REQUESTS) -> ControlCell:
    """Run one tournament cell; ``none`` cells re-check byte-identity."""
    plan = FaultPlan.from_spec(FAULT_PLANS[plan_label].format(seed=seed))
    spec = PolicySpec.from_spec(POLICY_SPECS[policy])
    rng_seed = derive_seed(seed, "e22", stack, plan_label)
    rtts, stats = _drive(stack, plan, spec, rng_seed, n_requests)
    identical: Optional[bool] = None
    if spec.inert:
        bare_rtts, _bare = _drive(stack, plan, None, rng_seed, n_requests,
                                  armed=False)
        identical = rtts == bare_rtts
    return ControlCell(
        stack=stack,
        plan=plan_label,
        policy=policy,
        n_requests=n_requests,
        completed=stats["completed"],
        p50_rtt_ns=_percentile(rtts, 0.50),
        p99_rtt_ns=_percentile(rtts, 0.99),
        retries=stats["retries"],
        tryagains=stats["tryagains"],
        deferrals=stats["deferrals"],
        actuations=stats["actuations"],
        epochs=stats["epochs"],
        rate_resets=stats["rate_resets"],
        identical=identical,
    )


def measure_adaptive_mix(seed: int = 0) -> dict:
    """Greedy epoch migration vs sticky single-stack baselines."""
    plan = FaultPlan.from_spec(MIX_PLAN.format(seed=seed))

    def run(chooser) -> dict:
        migrator = EpochMigrator(
            chooser=chooser,
            n_epochs=MIX_EPOCHS,
            requests_per_epoch=MIX_REQUESTS,
            epoch_horizon_ns=MIX_HORIZON_NS,
            migration_penalty_ns=MIX_PENALTY_NS,
            plan=plan,
        )
        history = migrator.run()
        served = [r for r in history if r.completed > 0]
        mean_p50 = (sum(r.p50_rtt_ns for r in served) / len(served)
                    if served else 0.0)
        return {
            "epochs": [r.as_dict() for r in history],
            "completed": sum(r.completed for r in history),
            "migrations": sum(1 for r in history if r.migrated),
            "mean_p50_ns": mean_p50,
            "final_stack": history[-1].stack,
        }

    return {
        "adaptive": run("greedy"),
        "baselines": {
            stack: run(sticky_chooser(stack)) for stack in MIX_BASELINES
        },
    }


def render_control(cells: list["ControlCell"],
                   adaptive: Optional[dict] = None) -> None:
    """Tournament tables: one block per fault plan, plus the mix race."""
    for plan_label in sorted({cell.plan for cell in cells}):
        rows = []
        for cell in cells:
            if cell.plan != plan_label:
                continue
            rows.append((
                cell.stack,
                cell.policy,
                f"{cell.completed}/{cell.n_requests}",
                fmt_ns(cell.p50_rtt_ns),
                fmt_ns(cell.p99_rtt_ns),
                str(cell.retries),
                str(cell.tryagains),
                str(cell.deferrals),
                str(len(cell.actuations)),
                {True: "yes", False: "NO", None: "-"}[cell.identical],
            ))
        print_table(
            ["stack", "policy", "done", "p50 RTT", "p99 RTT", "retries",
             "tryagains", "deferred", "actuations", "identical"],
            rows,
            title=f"E22 — policy tournament under the {plan_label!r} plan",
        )
        print()
    if adaptive:
        rows = [(
            "adaptive(greedy)",
            str(adaptive["adaptive"]["completed"]),
            str(adaptive["adaptive"]["migrations"]),
            fmt_ns(adaptive["adaptive"]["mean_p50_ns"]),
            adaptive["adaptive"]["final_stack"],
        )]
        for stack, entry in adaptive["baselines"].items():
            rows.append((
                f"sticky:{stack}",
                str(entry["completed"]),
                str(entry["migrations"]),
                fmt_ns(entry["mean_p50_ns"]),
                entry["final_stack"],
            ))
        print_table(
            ["placement", "completed", "migrations", "mean p50",
             "final stack"],
            rows,
            title="E22 — epoch migration vs sticky placement "
                  f"({MIX_EPOCHS} epochs)",
        )


def write_control_artifact(cells: list["ControlCell"],
                           adaptive: Optional[dict] = None,
                           path: str = CONTROL_ARTIFACT) -> dict:
    """Write the tournament + adaptive-mix payload as one artifact."""
    from ..exp.pool import jsonable

    payload = {
        "experiment": "e22",
        "window_ns": WINDOW_NS,
        "horizon_ns": HORIZON_NS,
        "plans": sorted({cell.plan for cell in cells}),
        "policies": sorted({cell.policy for cell in cells}),
        "cells": [jsonable(cell) for cell in cells],
        "adaptive": jsonable(adaptive) if adaptive else None,
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)
    return payload


def validate_control_payload(payload: dict, complete: bool = True) -> None:
    """Schema/acceptance check for the E22 artifact; raises ValueError.

    Checks what the tentpole promises: ``none`` cells are
    byte-identical to bare runs; active-policy cells actually ran
    decision epochs; actuation records are well-formed; and (with
    ``complete=True``) the tournament covers every stack × plan ×
    policy combination.
    """
    problems: list[str] = []
    cells = payload.get("cells")
    if not isinstance(cells, list) or not cells:
        raise ValueError("payload has no 'cells' list")
    seen = set()
    for cell in cells:
        tag = f"{cell.get('stack')}/{cell.get('plan')}/{cell.get('policy')}"
        seen.add((cell.get("stack"), cell.get("plan"), cell.get("policy")))
        for key in ("stack", "plan", "policy", "completed", "p50_rtt_ns"):
            if key not in cell:
                problems.append(f"{tag}: missing {key}")
        if cell.get("policy") == "none":
            if cell.get("identical") is not True:
                problems.append(
                    f"{tag}: inert controller was not byte-identical")
            if cell.get("actuations"):
                problems.append(f"{tag}: inert controller actuated")
        else:
            if cell.get("epochs", 0) < 1:
                problems.append(f"{tag}: controller never reached an epoch")
            for record in cell.get("actuations", []):
                if not {"t_ns", "epoch", "knob", "value"} <= set(record):
                    problems.append(f"{tag}: malformed actuation {record}")
        if cell.get("completed", 0) < 1:
            problems.append(f"{tag}: no requests completed")
    if complete:
        wanted = {
            (stack, plan, policy)
            for stack in STACKS
            for plan in FAULT_PLANS
            for policy in POLICY_SPECS
        }
        missing = wanted - seen
        if missing:
            problems.append(f"missing cells: {sorted(missing)}")
        adaptive = payload.get("adaptive")
        if not adaptive or "adaptive" not in adaptive:
            problems.append("missing adaptive-mix section")
        else:
            epochs = adaptive["adaptive"].get("epochs", [])
            if len(epochs) != MIX_EPOCHS:
                problems.append(
                    f"adaptive mix ran {len(epochs)} epochs, "
                    f"wanted {MIX_EPOCHS}")
            stacks_tried = {record.get("stack") for record in epochs}
            if not stacks_tried >= set(STACKS):
                problems.append(
                    "greedy chooser never explored "
                    f"{sorted(set(STACKS) - stacks_tried)}")
    if problems:
        raise ValueError("; ".join(problems))


def run_control(verbose: bool = True, smoke: bool = False,
                artifact_path: str = CONTROL_ARTIFACT) -> list[ControlCell]:
    """Serial runner; ``smoke=True`` is the CI one-cell-per-policy job."""
    if smoke:
        combos = [("lauberhorn", "storm", policy) for policy in POLICY_SPECS]
        adaptive = None
    else:
        combos = [
            (stack, plan, policy)
            for stack in STACKS
            for plan in FAULT_PLANS
            for policy in POLICY_SPECS
        ]
        adaptive = measure_adaptive_mix()
    cells = [measure_control_cell(stack, plan, policy)
             for stack, plan, policy in combos]
    if verbose:
        render_control(cells, adaptive)
        payload = write_control_artifact(cells, adaptive, artifact_path)
        validate_control_payload(payload, complete=not smoke)
        print(f"\n[wrote {artifact_path}: {len(payload['cells'])} cells]")
    return cells
