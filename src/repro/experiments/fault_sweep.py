"""E19 — graceful degradation of the four stacks under injected faults.

The paper's argument is an *operating system* argument: the NIC must
keep behaving like OS infrastructure when the world misbehaves.  This
experiment drives the Section 2 design-space workload (the same echo
service as E11) through the deterministic fault injectors — wire loss,
bit corruption, reordering, duplication, RX-pipeline stalls, DMA
spikes, core hiccups, coherence jitter — at a sweep of loss/stall
rates, with the full runtime-invariant layer armed.

For every point we report how many of the offered requests completed,
the retransmissions the clients needed, tail latency, how many faults
actually fired, and — the headline — that **zero invariants were
violated**: packets are conserved, MESI stays legal, no thread is
lost, and every Lauberhorn CONTROL fill is answered exactly once,
fault schedule or not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..check import install_checks
from ..faults import FaultPlan, active
from ..metrics.histogram import LatencyRecorder
from ..sim.clock import MS
from .four_stacks import STACKS, _build_stack
from .report import fmt_ns, print_table

__all__ = ["FaultPoint", "FAULT_POINTS", "measure_fault_point",
           "render_fault_sweep", "run_fault_sweep"]

#: (label, loss_rate per link-frame, RX ring stall rate per frame).
#: Every point also carries the :meth:`FaultPlan.default` background
#: rates (corruption, reordering, duplication, DMA spikes, core
#: hiccups, coherence jitter).
FAULT_POINTS = (
    ("calm", 0.0, 0.0),
    ("lossy", 0.02, 0.0),
    ("stalling", 0.0, 0.02),
    ("storm", 0.02, 0.02),
)

N_REQUESTS = 100
GAP_NS = 150_000.0
HORIZON_NS = 60 * MS


@dataclass(frozen=True)
class FaultPoint:
    """One (stack, fault mix) measurement."""

    stack: str
    label: str
    loss_rate: float
    stall_rate: float
    offered: int
    completed: int
    retries: int
    p50_rtt_ns: float
    p99_rtt_ns: float
    injected_faults: int
    violations: int
    violation_details: list = field(default_factory=list)


def measure_fault_point(
    stack: str,
    label: str = "custom",
    loss_rate: float = 0.0,
    stall_rate: float = 0.0,
    seed: int = 0,
    n_requests: int = N_REQUESTS,
) -> FaultPoint:
    """Run one stack under one fault mix with all invariants armed."""
    plan = FaultPlan.from_spec(
        f"default,seed={seed},loss={loss_rate},stall={stall_rate}"
    )
    with active(plan):
        bed, service, method = _build_stack(stack)
    registry = install_checks(bed)
    registry.start(HORIZON_NS)

    client = bed.clients[0]
    recorder = LatencyRecorder()
    completed = [0]

    def collect(event):
        completed[0] += 1
        recorder.record(event._value.rtt_ns)

    def driver():
        yield bed.sim.timeout(10_000)
        for i in range(n_requests):
            event = client.send_request(
                bed.server_mac, bed.server_ip, service.udp_port,
                service.service_id, method.method_id, [i],
            )
            event.add_callback(collect)
            yield bed.sim.timeout(GAP_NS)

    bed.sim.process(driver())
    bed.machine.run(until=HORIZON_NS)
    violations = registry.finish()

    summary = recorder.summary()
    stats = bed.machine.fault_stats
    return FaultPoint(
        stack=stack,
        label=label,
        loss_rate=loss_rate,
        stall_rate=stall_rate,
        offered=n_requests,
        completed=completed[0],
        retries=client.retries,
        p50_rtt_ns=summary.p50,
        p99_rtt_ns=summary.p99,
        injected_faults=stats.total() if stats is not None else 0,
        violations=len(violations),
        violation_details=[str(v) for v in violations],
    )


def render_fault_sweep(results: list[FaultPoint]) -> None:
    print_table(
        ["stack", "faults", "done", "retries", "p50 RTT", "p99 RTT",
         "injected", "violations"],
        [(r.stack, r.label, f"{r.completed}/{r.offered}", str(r.retries),
          fmt_ns(r.p50_rtt_ns), fmt_ns(r.p99_rtt_ns),
          str(r.injected_faults), str(r.violations)) for r in results],
        title="E19 — fault sweep with runtime invariants armed",
    )
    bad = [r for r in results if r.violations]
    if bad:
        print()
        for r in bad:
            for detail in r.violation_details:
                print(f"  !! {r.stack}/{r.label}: {detail}")


def run_fault_sweep(verbose: bool = True, seed: int = 0) -> list[FaultPoint]:
    results = [
        measure_fault_point(stack, label, loss, stall, seed=seed)
        for stack in STACKS
        for (label, loss, stall) in FAULT_POINTS
    ]
    if verbose:
        render_fault_sweep(results)
    return results
