"""E14 — peak throughput: requests/second per serving core.

The paper's efficiency claim has a throughput corollary: if dispatch
costs ~zero software, one core's request rate is bounded by the handler
plus the protocol's line round trips, not by a software stack.  This
experiment saturates each stack closed-loop and reports

* single-core peak throughput per stack, and
* Lauberhorn's scaling across 1/2/4 end-points on 1/2/4 cores
  (one armed user loop each — the paper's "hot services <= cores"
  regime).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nic.lauberhorn import EndpointKind
from ..os.nicsched import lauberhorn_user_loop
from ..rpc.server import bypass_worker, linux_udp_worker
from ..sim.clock import MS, SEC
from ..workloads.generator import ClosedLoopGenerator, ServiceMix, Target
from .report import print_table
from .testbed import (
    build_bypass_testbed,
    build_lauberhorn_testbed,
    build_linux_testbed,
)

__all__ = ["ThroughputResult", "run_throughput", "run_lauberhorn_scaling"]

HANDLER_COST = 500


@dataclass(frozen=True)
class ThroughputResult:
    config: str
    n_cores: int
    completed: int
    duration_ns: float

    @property
    def requests_per_sec(self) -> float:
        return self.completed / (self.duration_ns / SEC)

    @property
    def requests_per_sec_per_core(self) -> float:
        return self.requests_per_sec / self.n_cores


def _drive_closed_loop(bed, targets, concurrency: int, n_requests: int):
    generator = ClosedLoopGenerator(
        bed.clients[0],
        ServiceMix(targets),
        bed.server_mac,
        bed.server_ip,
        rng=bed.machine.rng.stream("throughput"),
    )
    start = bed.sim.now
    done = bed.sim.process(generator.run(concurrency, n_requests))
    bed.machine.run(until=done)
    return generator.completed, bed.sim.now - start


def run_throughput(concurrency: int = 32, n_requests: int = 300,
                   verbose: bool = True) -> list[ThroughputResult]:
    results: list[ThroughputResult] = []

    # Linux: one worker (one serving core at a time).
    bed = build_linux_testbed()
    service = bed.registry.create_service("s", udp_port=9000)
    method = bed.registry.add_method(service, "m", lambda a: [1],
                                     cost_instructions=HANDLER_COST)
    socket = bed.netstack.bind(9000)
    process = bed.kernel.spawn_process("srv")
    bed.kernel.spawn_thread(process, linux_udp_worker(socket, bed.registry),
                            pinned_core=0)
    completed, duration = _drive_closed_loop(
        bed, [Target(service, method)], concurrency, n_requests
    )
    results.append(ThroughputResult("linux", 1, completed, duration))

    # Bypass: one PMD worker.
    bed = build_bypass_testbed()
    service = bed.registry.create_service("s", udp_port=9000)
    method = bed.registry.add_method(service, "m", lambda a: [1],
                                     cost_instructions=HANDLER_COST)
    bed.nic.steer_port(9000, 0)
    process = bed.kernel.spawn_process("pmd")
    bed.kernel.spawn_thread(
        process, bypass_worker(bed.nic, bed.nic.queues[0], bed.user_netctx,
                               bed.registry),
        pinned_core=0,
    )
    completed, duration = _drive_closed_loop(
        bed, [Target(service, method)], concurrency, n_requests
    )
    results.append(ThroughputResult("bypass", 1, completed, duration))

    # Lauberhorn: one user loop.
    bed = build_lauberhorn_testbed()
    service = bed.registry.create_service("s", udp_port=9000)
    method = bed.registry.add_method(service, "m", lambda a: [1],
                                     cost_instructions=HANDLER_COST)
    process = bed.kernel.spawn_process("srv")
    bed.nic.register_service(service, process.pid)
    endpoint = bed.nic.create_endpoint(EndpointKind.USER, service=service)
    bed.kernel.spawn_thread(
        process, lauberhorn_user_loop(bed.nic, endpoint, bed.registry),
        pinned_core=0,
    )
    completed, duration = _drive_closed_loop(
        bed, [Target(service, method)], concurrency, n_requests
    )
    results.append(ThroughputResult("lauberhorn", 1, completed, duration))

    if verbose:
        print_table(
            ["stack", "cores", "requests", "kreq/s/core"],
            [(r.config, r.n_cores, r.completed,
              f"{r.requests_per_sec_per_core / 1e3:.0f}")
             for r in results],
            title=f"Peak closed-loop throughput (concurrency {concurrency})",
        )
    return results


def run_lauberhorn_scaling(core_counts=(1, 2, 4), concurrency: int = 48,
                           n_requests: int = 400, verbose: bool = True):
    """One service per core, each with its own armed end-point."""
    results: list[ThroughputResult] = []
    for n_cores in core_counts:
        bed = build_lauberhorn_testbed()
        targets = []
        for index in range(n_cores):
            service = bed.registry.create_service(f"s{index}",
                                                  udp_port=9000 + index)
            method = bed.registry.add_method(service, "m", lambda a: [1],
                                             cost_instructions=HANDLER_COST)
            process = bed.kernel.spawn_process(f"s{index}")
            bed.nic.register_service(service, process.pid)
            endpoint = bed.nic.create_endpoint(EndpointKind.USER, service=service)
            bed.kernel.spawn_thread(
                process, lauberhorn_user_loop(bed.nic, endpoint, bed.registry),
                pinned_core=index,
            )
            targets.append(Target(service, method))
        completed, duration = _drive_closed_loop(
            bed, targets, concurrency, n_requests
        )
        results.append(ThroughputResult(
            f"lauberhorn x{n_cores}", n_cores, completed, duration
        ))
    if verbose:
        print_table(
            ["config", "cores", "kreq/s", "kreq/s/core"],
            [(r.config, r.n_cores, f"{r.requests_per_sec / 1e3:.0f}",
              f"{r.requests_per_sec_per_core / 1e3:.0f}")
             for r in results],
            title="Lauberhorn end-point scaling",
        )
    return results
