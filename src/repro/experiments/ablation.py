"""Ablations of DESIGN.md §6's called-out design choices.

* **deserialisation offload** — hot-path latency and host cycles with
  the NIC's unmarshal engine on vs. the host doing it in software
  (the Optimus-Prime-style engine is one of Lauberhorn's three pieces;
  this quantifies what it buys).
* **encryption placement** — AEAD on the NIC pipeline vs. on the host
  CPU, across all three stacks (Section 6's "encryption can be handled
  with fairly standard techniques" — standard, but *where* matters).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.cycles import CycleWindow
from ..metrics.histogram import LatencyRecorder
from ..nic.lauberhorn import EndpointKind
from ..os.nicsched import lauberhorn_user_loop
from ..rpc.server import linux_udp_worker
from ..sim.clock import MS
from ..workloads.distributions import args_for_payload
from .report import fmt_ns, print_table
from .testbed import build_lauberhorn_testbed, build_linux_testbed

__all__ = ["AblationRow", "run_deserialize_ablation", "run_crypto_ablation"]


@dataclass(frozen=True)
class AblationRow:
    config: str
    p50_rtt_ns: float
    busy_ns_per_request: float


def _measure_lauberhorn(payload_bytes: int, software_unmarshal: bool,
                        encrypted: bool = False, n: int = 15) -> AblationRow:
    bed = build_lauberhorn_testbed()
    service = bed.registry.create_service(
        "svc", udp_port=9000, encrypted=encrypted
    )
    method = bed.registry.add_method(
        service, "m", lambda args: ["ok"], cost_instructions=300
    )
    process = bed.kernel.spawn_process("svc")
    bed.nic.register_service(service, process.pid)
    endpoint = bed.nic.create_endpoint(EndpointKind.USER, service=service)
    bed.kernel.spawn_thread(
        process,
        lauberhorn_user_loop(bed.nic, endpoint, bed.registry,
                             software_unmarshal=software_unmarshal),
        pinned_core=0,
    )
    return _drive(bed, service, method, payload_bytes, n,
                  config=_label("lauberhorn", software_unmarshal, encrypted))


def _measure_linux(payload_bytes: int, encrypted: bool, n: int = 15) -> AblationRow:
    bed = build_linux_testbed()
    service = bed.registry.create_service(
        "svc", udp_port=9000, encrypted=encrypted
    )
    method = bed.registry.add_method(
        service, "m", lambda args: ["ok"], cost_instructions=300
    )
    socket = bed.netstack.bind(9000)
    process = bed.kernel.spawn_process("svc")
    bed.kernel.spawn_thread(process, linux_udp_worker(socket, bed.registry))
    return _drive(bed, service, method, payload_bytes, n,
                  config=_label("linux", False, encrypted))


def _label(stack: str, software_unmarshal: bool, encrypted: bool) -> str:
    parts = [stack]
    if software_unmarshal:
        parts.append("sw-unmarshal")
    if encrypted:
        parts.append("encrypted")
    return "+".join(parts)


def _drive(bed, service, method, payload_bytes, n, config) -> AblationRow:
    client = bed.clients[0]
    args = args_for_payload(payload_bytes)
    recorder = LatencyRecorder()
    window = CycleWindow(bed.machine)
    state = {}

    def driver():
        yield bed.sim.timeout(10_000)
        yield from client.call(args=args, **bed.call_args(service, method))
        window.begin()
        for _ in range(n):
            result = yield from client.call(
                args=args, **bed.call_args(service, method)
            )
            recorder.record(result.rtt_ns)
        state["cost"] = window.end(n)

    bed.sim.process(driver())
    bed.machine.run(until=2000 * MS)
    return AblationRow(
        config=config,
        p50_rtt_ns=recorder.summary().p50,
        busy_ns_per_request=state["cost"].busy_ns_per_request,
    )


def run_deserialize_ablation(payload_bytes: int = 512, verbose: bool = True):
    """NIC deserialisation offload: on vs off, on the hot path."""
    rows = [
        _measure_lauberhorn(payload_bytes, software_unmarshal=False),
        _measure_lauberhorn(payload_bytes, software_unmarshal=True),
    ]
    if verbose:
        print_table(
            ["configuration", "p50 RTT", "busy/req"],
            [(r.config, fmt_ns(r.p50_rtt_ns), fmt_ns(r.busy_ns_per_request))
             for r in rows],
            title=f"Ablation — deserialisation offload ({payload_bytes} B args)",
        )
    return rows


def run_crypto_ablation(payload_bytes: int = 1024, verbose: bool = True):
    """AEAD on the NIC (Lauberhorn) vs on the host (Linux)."""
    rows = [
        _measure_lauberhorn(payload_bytes, False, encrypted=False),
        _measure_lauberhorn(payload_bytes, False, encrypted=True),
        _measure_linux(payload_bytes, encrypted=False),
        _measure_linux(payload_bytes, encrypted=True),
    ]
    if verbose:
        print_table(
            ["configuration", "p50 RTT", "busy/req"],
            [(r.config, fmt_ns(r.p50_rtt_ns), fmt_ns(r.busy_ns_per_request))
             for r in rows],
            title=f"Ablation — encryption placement ({payload_bytes} B args)",
        )
    return rows
