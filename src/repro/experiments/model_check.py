"""E7 — Section 6: model-checking the protocol "relatively easily".

Runs the explicit-state checker over the Figure 4 protocol spec at
several bounds, with and without preemption, and (as a sanity check
that the verification has teeth) over two seeded-bug variants that must
fail.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mc import (
    LauberhornProtocolSpec,
    ModelChecker,
    OwnershipConfig,
    OwnershipSpec,
    ProtocolConfig,
)
from .report import print_table

__all__ = ["CheckRow", "run_model_check"]


@dataclass(frozen=True)
class CheckRow:
    config: str
    ok: bool
    states: int
    transitions: int
    depth: int
    violated: str


def run_model_check(verbose: bool = True) -> list[CheckRow]:
    configs = [
        ("correct n=2", ProtocolConfig(total_packets=2)),
        ("correct n=3", ProtocolConfig(total_packets=3)),
        ("correct n=4", ProtocolConfig(total_packets=4)),
        ("correct n=3 + preemption", ProtocolConfig(total_packets=3, preemption=True)),
        ("bug: skip response store", ProtocolConfig(total_packets=2, bug="skip_store")),
        ("bug: tryagain keeps parked",
         ProtocolConfig(total_packets=2, bug="tryagain_keeps_parked")),
    ]
    ownership_configs = [
        ("ownership: correct", OwnershipConfig()),
        ("ownership bug: overwrite parked fill",
         OwnershipConfig(bug="overwrite_park")),
    ]
    rows: list[CheckRow] = []
    for label, config in configs:
        result = ModelChecker(LauberhornProtocolSpec(config)).run()
        rows.append(CheckRow(
            config=label,
            ok=result.ok,
            states=result.states_explored,
            transitions=result.transitions,
            depth=result.max_depth,
            violated=(result.violation.name if result.violation else "-"),
        ))
    for label, config in ownership_configs:
        result = ModelChecker(OwnershipSpec(config)).run()
        rows.append(CheckRow(
            config=label,
            ok=result.ok,
            states=result.states_explored,
            transitions=result.transitions,
            depth=result.max_depth,
            violated=(result.violation.name if result.violation else "-"),
        ))
    if verbose:
        print_table(
            ["configuration", "result", "states", "transitions", "depth",
             "violated invariant"],
            [
                (r.config, "OK" if r.ok else "FAIL", r.states, r.transitions,
                 r.depth, r.violated)
                for r in rows
            ],
            title="Section 6 — model checking the Figure 4 protocol",
        )
    return rows
