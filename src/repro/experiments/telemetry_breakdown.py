"""Telemetry: the NIC-observed per-RPC latency breakdown (Section 6).

Drives a mix of hot (armed user loop) and cold (kernel-dispatched)
traffic and prints the queueing / service / egress percentile breakdown
that the Lauberhorn telemetry ring produces with zero software on the
data path — the "tracing, debugging, and statistics" integration the
paper flags as a benefit of making the NIC part of the OS.
"""

from __future__ import annotations

from ..nic.lauberhorn import EndpointKind
from ..os.nicsched import NicScheduler, lauberhorn_user_loop
from ..sim.clock import MS
from .report import fmt_ns, print_table
from .testbed import build_lauberhorn_testbed

__all__ = ["run_telemetry_breakdown"]


def run_telemetry_breakdown(n_requests: int = 20, verbose: bool = True):
    bed = build_lauberhorn_testbed()

    hot = bed.registry.create_service("hot", udp_port=9000)
    hot_m = bed.registry.add_method(hot, "m", lambda a: list(a),
                                    cost_instructions=500)
    hot_proc = bed.kernel.spawn_process("hot")
    bed.nic.register_service(hot, hot_proc.pid)
    hot_ep = bed.nic.create_endpoint(EndpointKind.USER, service=hot)
    bed.kernel.spawn_thread(
        hot_proc, lauberhorn_user_loop(bed.nic, hot_ep, bed.registry),
        pinned_core=0,
    )

    cold = bed.registry.create_service("cold", udp_port=9001)
    cold_m = bed.registry.add_method(cold, "m", lambda a: list(a),
                                     cost_instructions=500)
    cold_proc = bed.kernel.spawn_process("cold")
    bed.nic.register_service(cold, cold_proc.pid)
    NicScheduler(bed.kernel, bed.nic, bed.registry, n_dispatchers=1,
                 promote=False)

    client = bed.clients[0]

    def driver():
        yield bed.sim.timeout(10_000)
        for i in range(n_requests):
            service, method = (hot, hot_m) if i % 2 == 0 else (cold, cold_m)
            yield from client.call(args=[i], **bed.call_args(service, method))

    bed.sim.process(driver())
    bed.machine.run(until=1000 * MS)

    telemetry = bed.nic.telemetry
    if verbose:
        for service in (hot, cold):
            breakdown = telemetry.breakdown(service.service_id)
            print_table(
                ["stage", "p50", "p99"],
                [(stage, fmt_ns(summary.p50), fmt_ns(summary.p99))
                 for stage, summary in breakdown.items()],
                title=f"NIC telemetry — service {service.name!r}",
            )
        print(f"\nkernel-dispatch fraction: "
              f"{telemetry.kernel_dispatch_fraction():.2f}")
    return telemetry
