"""E6 — Section 5.1: Tryagain, polling overhead, and energy.

"We avoid this by returning Tryagain dummy messages after 15ms,
reducing the polling overhead (both bus traffic and CPU spinning) to
almost zero and improving energy efficiency."

Two sub-experiments:

* **wait-mechanism energy** — serve a trickle of RPCs (one per ``gap``)
  with each stack and compare the serving core's energy per request:
  the bypass core spins through the gap (busy watts), the Linux worker
  sleeps (idle watts, but pays the interrupt path per request), the
  Lauberhorn loop stalls in a blocked load (stall watts, zero
  instructions).
* **timeout ablation** — tryagain messages per second and bus
  transactions as a function of the timeout value: the 15 ms choice
  makes the keep-alive traffic negligible.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.energy import PowerParams, core_energy
from ..nic.lauberhorn import EndpointKind
from ..os.nicsched import lauberhorn_user_loop
from ..rpc.server import bypass_worker, linux_udp_worker
from ..sim.clock import MS, SEC, US
from .report import fmt_ns, print_table
from .testbed import (
    build_bypass_testbed,
    build_lauberhorn_testbed,
    build_linux_testbed,
)

__all__ = ["EnergyRow", "TimeoutRow", "run_tryagain_energy",
           "run_timeout_ablation"]


@dataclass(frozen=True)
class EnergyRow:
    stack: str
    gap_ns: float
    requests: int
    busy_ns: float
    stall_ns: float
    energy_mj: float
    energy_uj_per_request: float


@dataclass(frozen=True)
class TimeoutRow:
    timeout_ns: float
    tryagains_per_sec: float
    fabric_transactions_per_sec: float


def _serve_trickle(bed, service, method, gap_ns: float, n_requests: int):
    client = bed.clients[0]
    done = {"count": 0}

    def driver():
        yield bed.sim.timeout(10_000)
        for i in range(n_requests):
            result = yield from client.call(
                args=[i], **bed.call_args(service, method)
            )
            done["count"] += 1
            yield bed.sim.timeout(gap_ns)

    bed.sim.process(driver())
    bed.machine.run(until=(n_requests + 2) * (gap_ns + 100 * US))
    return done["count"]


def run_tryagain_energy(
    gap_ns: float = 5 * MS,
    n_requests: int = 5,
    power: PowerParams = PowerParams(),
    verbose: bool = True,
) -> list[EnergyRow]:
    """Energy per request for the three wait mechanisms."""
    rows: list[EnergyRow] = []

    def finish(stack, bed, served):
        core = bed.machine.cores[0]
        window = bed.sim.now
        energy = core_energy(core, window, power)
        rows.append(EnergyRow(
            stack=stack,
            gap_ns=gap_ns,
            requests=served,
            busy_ns=core.counters.busy_ns,
            stall_ns=core.stall_ns_now(),
            energy_mj=energy.total_j * 1e3,
            energy_uj_per_request=energy.total_j * 1e6 / max(1, served),
        ))

    # Linux: worker blocks in recvmsg; core 0 hosts it (pinned).
    bed = build_linux_testbed()
    service = bed.registry.create_service("echo", udp_port=9000)
    method = bed.registry.add_method(service, "m", lambda a: list(a),
                                     cost_instructions=300)
    socket = bed.netstack.bind(9000)
    process = bed.kernel.spawn_process("echo")
    bed.kernel.spawn_thread(process, linux_udp_worker(socket, bed.registry),
                            pinned_core=0)
    bed.nic.set_queue_core(0, 0)
    served = _serve_trickle(bed, service, method, gap_ns, n_requests)
    finish("linux (interrupt)", bed, served)

    # Bypass: worker spins on core 0.
    bed = build_bypass_testbed()
    service = bed.registry.create_service("echo", udp_port=9000)
    method = bed.registry.add_method(service, "m", lambda a: list(a),
                                     cost_instructions=300)
    process = bed.kernel.spawn_process("echo")
    bed.kernel.spawn_thread(
        process,
        bypass_worker(bed.nic, bed.nic.queues[0], bed.user_netctx, bed.registry),
        pinned_core=0,
    )
    bed.nic.steer_port(9000, 0)
    served = _serve_trickle(bed, service, method, gap_ns, n_requests)
    finish("bypass (spin)", bed, served)

    # Lauberhorn: worker stalls in a blocked load on core 0.
    bed = build_lauberhorn_testbed()
    service = bed.registry.create_service("echo", udp_port=9000)
    method = bed.registry.add_method(service, "m", lambda a: list(a),
                                     cost_instructions=300)
    process = bed.kernel.spawn_process("echo")
    bed.nic.register_service(service, process.pid)
    endpoint = bed.nic.create_endpoint(EndpointKind.USER, service=service)
    bed.kernel.spawn_thread(
        process, lauberhorn_user_loop(bed.nic, endpoint, bed.registry),
        pinned_core=0,
    )
    served = _serve_trickle(bed, service, method, gap_ns, n_requests)
    finish("lauberhorn (blocked load)", bed, served)

    if verbose:
        print_table(
            ["mechanism", "gap", "reqs", "core0 busy", "core0 stall",
             "energy", "energy/req"],
            [
                (r.stack, fmt_ns(r.gap_ns), r.requests, fmt_ns(r.busy_ns),
                 fmt_ns(r.stall_ns), f"{r.energy_mj:.3f} mJ",
                 f"{r.energy_uj_per_request:.1f} uJ")
                for r in rows
            ],
            title="Section 5.1 — wait-mechanism energy "
                  f"(1 RPC per {fmt_ns(gap_ns)})",
        )
    return rows


def run_timeout_ablation(
    timeouts_ns=(1 * MS, 5 * MS, 15 * MS, 100 * MS),
    idle_ns: float = 300 * MS,
    verbose: bool = True,
) -> list[TimeoutRow]:
    """Keep-alive traffic vs Tryagain timeout on a fully idle endpoint."""
    rows: list[TimeoutRow] = []
    for timeout_ns in timeouts_ns:
        bed = build_lauberhorn_testbed(tryagain_timeout_ns=timeout_ns)
        service = bed.registry.create_service("idle", udp_port=9000)
        bed.registry.add_method(service, "m", lambda a: list(a))
        process = bed.kernel.spawn_process("idle")
        bed.nic.register_service(service, process.pid)
        endpoint = bed.nic.create_endpoint(EndpointKind.USER, service=service)
        bed.kernel.spawn_thread(
            process, lauberhorn_user_loop(bed.nic, endpoint, bed.registry),
            pinned_core=0,
        )
        bed.machine.run(until=idle_ns)
        seconds = idle_ns / SEC
        rows.append(TimeoutRow(
            timeout_ns=timeout_ns,
            tryagains_per_sec=bed.nic.lstats.tryagains / seconds,
            fabric_transactions_per_sec=(
                bed.machine.fabric.stats.total_transactions() / seconds
            ),
        ))
    if verbose:
        print_table(
            ["tryagain timeout", "tryagains/s", "fabric transactions/s"],
            [
                (fmt_ns(r.timeout_ns), f"{r.tryagains_per_sec:.1f}",
                 f"{r.fabric_transactions_per_sec:.1f}")
                for r in rows
            ],
            title="Section 5.1 — Tryagain timeout ablation (idle endpoint)",
        )
    return rows
