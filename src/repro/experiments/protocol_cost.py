"""E10 — Figure 4: steady-state protocol cost per RPC.

Counts the coherence-fabric transactions one request costs on the hot
path: in steady state each RPC should take exactly one CONTROL fill
(which both signals completion of the previous request and waits for
the next), one fetch-exclusive recall of the response line, and the
line transfers they imply.  The response store itself is a silent
local upgrade — zero fabric traffic — which is the protocol's whole
point.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nic.lauberhorn import EndpointKind
from ..os.nicsched import lauberhorn_user_loop
from ..sim.clock import MS
from .report import print_table

__all__ = ["ProtocolCost", "run_protocol_cost"]


@dataclass(frozen=True)
class ProtocolCost:
    requests: int
    fills_per_request: float
    recalls_per_request: float
    upgrades_per_request: float
    line_transfers_per_request: float
    invalidations_per_request: float


def run_protocol_cost(n_requests: int = 32, verbose: bool = True) -> ProtocolCost:
    from .testbed import build_lauberhorn_testbed

    bed = build_lauberhorn_testbed()
    service = bed.registry.create_service("echo", udp_port=9000)
    method = bed.registry.add_method(
        service, "echo", lambda args: list(args), cost_instructions=300
    )
    process = bed.kernel.spawn_process("echo")
    bed.nic.register_service(service, process.pid)
    endpoint = bed.nic.create_endpoint(EndpointKind.USER, service=service)
    bed.kernel.spawn_thread(
        process, lauberhorn_user_loop(bed.nic, endpoint, bed.registry),
        pinned_core=0,
    )
    client = bed.clients[0]
    fabric = bed.machine.fabric
    state = {}

    def driver():
        yield bed.sim.timeout(10_000)
        # Warm up past the first (cold) request, then snapshot.
        for i in range(3):
            yield from client.call(args=[i], **bed.call_args(service, method))
        state["before"] = (
            fabric.stats.fills, fabric.stats.recalls, fabric.stats.upgrades,
            fabric.stats.line_transfers, fabric.stats.invalidations,
        )
        for i in range(n_requests):
            yield from client.call(args=[i], **bed.call_args(service, method))
        state["after"] = (
            fabric.stats.fills, fabric.stats.recalls, fabric.stats.upgrades,
            fabric.stats.line_transfers, fabric.stats.invalidations,
        )

    bed.sim.process(driver())
    bed.machine.run(until=2000 * MS)
    before, after = state["before"], state["after"]
    deltas = [a - b for a, b in zip(after, before)]
    cost = ProtocolCost(
        requests=n_requests,
        fills_per_request=deltas[0] / n_requests,
        recalls_per_request=deltas[1] / n_requests,
        upgrades_per_request=deltas[2] / n_requests,
        line_transfers_per_request=deltas[3] / n_requests,
        invalidations_per_request=deltas[4] / n_requests,
    )
    if verbose:
        print_table(
            ["fabric transaction", "per RPC (steady state)"],
            [
                ("CONTROL fills (blocked loads)", f"{cost.fills_per_request:.2f}"),
                ("fetch-exclusive recalls", f"{cost.recalls_per_request:.2f}"),
                ("ownership upgrades (response store)",
                 f"{cost.upgrades_per_request:.2f}"),
                ("line transfers", f"{cost.line_transfers_per_request:.2f}"),
                ("invalidations", f"{cost.invalidations_per_request:.2f}"),
            ],
            title="Figure 4 — coherence transactions per small RPC",
        )
    return cost
