"""Experiment harness (S14): testbeds and one module per paper artifact.

The individual experiments (E1-E18) live in their own modules and are
indexed by :data:`repro.experiments.run_all.EXPERIMENTS`; import them
lazily via ``run_all`` to keep testbed imports light.
"""

from .testbed import (
    SERVER_IP,
    SERVER_MAC,
    Testbed,
    build_bypass_testbed,
    build_lauberhorn_testbed,
    build_linux_testbed,
)

__all__ = [
    "SERVER_IP",
    "SERVER_MAC",
    "Testbed",
    "build_bypass_testbed",
    "build_lauberhorn_testbed",
    "build_linux_testbed",
]
