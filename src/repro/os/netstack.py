"""In-kernel UDP stack: sockets, softirq RX, syscall TX.

This is the Linux-baseline data path of Figure 1/Figure 5-left: the NIC
interrupts a core, the softirq parses the frame and enqueues it on a
socket, a blocked worker thread is woken through the scheduler, resumes
inside ``recvmsg``, copies the datagram out, and only then does
application code see the RPC.  Every one of those steps charges
instructions from :class:`~repro.hw.params.OsCostParams`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..hw.core import Core
from ..net.headers import HeaderError, MacAddress
from ..net.packet import Frame, build_udp_frame, parse_udp_frame
from ..obs.spans import public_meta
from ..sim.engine import Event
from .kernel import Kernel, KernelError
from .ops import SendDatagram
from .process import OsThread

__all__ = ["Datagram", "UdpSocket", "NetStack"]


@dataclass(frozen=True)
class Datagram:
    """What ``recvmsg`` returns to a thread body."""

    payload: bytes
    src_ip: int
    src_port: int
    dst_ip: int
    dst_port: int
    born_ns: float = 0.0
    meta: dict = field(default_factory=dict)


@dataclass
class SocketStats:
    enqueued: int = 0
    dropped: int = 0
    delivered: int = 0
    sent: int = 0


class UdpSocket:
    """A bound UDP socket with a bounded receive queue."""

    def __init__(self, netstack: "NetStack", port: int, capacity: int = 1024):
        self.netstack = netstack
        self.port = port
        self.capacity = capacity
        self.rx_queue: list[Datagram] = []
        #: events of threads blocked in recvmsg, FIFO
        self.waiters: list[Event] = []
        self.stats = SocketStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<UdpSocket :{self.port} q={len(self.rx_queue)}>"


class NetStack:
    """The kernel network stack of one machine."""

    def __init__(
        self,
        kernel: Kernel,
        ip: int,
        mac: MacAddress,
    ):
        self.kernel = kernel
        self.sim = kernel.sim
        self.costs = kernel.costs
        self.ip = ip
        self.mac = mac
        #: static neighbour table (we do not simulate ARP traffic)
        self.arp: dict[int, MacAddress] = {}
        self.sockets: dict[int, UdpSocket] = {}
        self.rx_parse_errors = 0
        self.rx_no_socket = 0
        #: span recorder (repro.obs); None keeps softirq/syscall paths
        #: free of any observability work beyond one attribute test
        self.obs = None
        kernel.netstack = self

    # -- socket API -------------------------------------------------------------

    def bind(self, port: int, capacity: int = 1024) -> UdpSocket:
        if port in self.sockets:
            raise ValueError(f"UDP port {port} already bound")
        socket = UdpSocket(self, port, capacity)
        self.sockets[port] = socket
        return socket

    def add_neighbor(self, ip: int, mac: MacAddress) -> None:
        self.arp[ip] = mac

    def bind_metrics(self, registry, prefix: str = "netstack") -> None:
        """Register stack counters and per-socket stats (live probes)."""
        registry.probe(prefix, lambda: {
            "rx_parse_errors": self.rx_parse_errors,
            "rx_no_socket": self.rx_no_socket,
            "sockets": len(self.sockets),
            # Aggregate socket-queue occupancy: the kernel stack's
            # dominant wait shows up here in the time-series windows.
            "rx_queued": sum(len(s.rx_queue) for s in self.sockets.values()),
        })
        for port, socket in self.sockets.items():
            registry.bind(f"{prefix}.udp{port}", socket.stats)
            registry.probe(f"{prefix}.udp{port}", lambda s=socket: {
                "queue_depth": len(s.rx_queue),
            })

    # -- syscall paths (run on a core, in thread context) --------------------------

    def sys_recv(self, core: Core, thread: OsThread, socket: UdpSocket):
        """``recvmsg``: generator returning 'ran' or 'blocked'."""
        self.kernel.stats.syscalls += 1
        yield from core.execute(self.costs.syscall_instructions)
        if socket.rx_queue:
            datagram = socket.rx_queue.pop(0)
            socket.stats.delivered += 1
            yield from core.execute(self.costs.socket_copy_instructions)
            obs = self.obs
            if obs is not None:
                ctx = datagram.meta.get("obs")
                enqueued_ns = datagram.meta.pop("_obs_enq_ns", None)
                if ctx is not None:
                    if enqueued_ns is not None:
                        obs.record("os.socket", "os", ctx, enqueued_ns,
                                   self.sim.now)
                    datagram.meta["_obs_rx_ns"] = self.sim.now
            thread.resume_value = datagram
            return "ran"
        event = Event(self.sim)
        socket.waiters.append(event)
        # The wake path re-enters the syscall: charge the copy-out when
        # the thread next runs.
        thread.pending_charge_instructions += self.costs.socket_copy_instructions
        self.kernel._block_thread(thread, event)
        return "blocked"

    def sys_send(self, core: Core, thread: OsThread, op: SendDatagram):
        """``sendmsg``: generator; charges TX path and submits to the NIC."""
        obs = self.obs
        ctx = op.meta.get("obs") if obs is not None else None
        if ctx is not None:
            # Close the application window opened at recvmsg hand-off:
            # wakeup, syscall return, unmarshal, handler, marshal.
            handed_ns = op.meta.get("_obs_rx_ns")
            if handed_ns is not None:
                obs.record("app", "app", ctx, handed_ns, self.sim.now)
        tx_start_ns = self.sim.now
        self.kernel.stats.syscalls += 1
        yield from core.execute(
            self.costs.syscall_instructions + self.costs.socket_tx_instructions
        )
        frame = self.build_frame(
            src_port=op.socket.port,
            dst_ip=op.dst_ip,
            dst_port=op.dst_port,
            payload=op.payload,
            meta=public_meta(op.meta),
        )
        op.socket.stats.sent += 1
        nic = self._nic()
        yield from nic.transmit(frame, core)
        if ctx is not None:
            obs.record("os.tx", "os", ctx, tx_start_ns, self.sim.now)
        return None

    def build_frame(
        self,
        src_port: int,
        dst_ip: int,
        dst_port: int,
        payload: bytes,
        meta: Optional[dict] = None,
    ) -> Frame:
        dst_mac = self.arp.get(dst_ip)
        if dst_mac is None:
            raise KernelError(f"no neighbour entry for IP {dst_ip:#010x}")
        return build_udp_frame(
            src_mac=self.mac,
            dst_mac=dst_mac,
            src_ip=self.ip,
            dst_ip=dst_ip,
            src_port=src_port,
            dst_port=dst_port,
            payload=payload,
            born_ns=self.sim.now,
            meta=dict(meta or {}),
        )

    def _nic(self):
        if not self.kernel.nics:
            raise KernelError("no NIC registered with the kernel")
        return self.kernel.nics[0]

    # -- softirq RX path (runs in IRQ context on the interrupted core) -----------

    def softirq_rx(self, core: Core, frame: Frame):
        """Protocol processing + socket delivery for one frame; generator.

        This is steps 5-9 of the paper's Section 2 list: general
        protocol processing, finding the process, and (via the
        scheduler) getting it onto a core.
        """
        obs = self.obs
        ctx = frame.peek_meta("obs") if obs is not None else None
        softirq_start_ns = self.sim.now
        yield from core.execute(self.costs.softirq_instructions)
        try:
            parsed = parse_udp_frame(frame)
        except HeaderError:
            self.rx_parse_errors += 1
            return None
        socket = self.sockets.get(parsed.udp.dst_port)
        if socket is None:
            self.rx_no_socket += 1
            return None
        yield from core.execute(self.costs.socket_rx_instructions)
        datagram = Datagram(
            payload=parsed.payload,
            src_ip=parsed.ip.src,
            src_port=parsed.udp.src_port,
            dst_ip=parsed.ip.dst,
            dst_port=parsed.udp.dst_port,
            born_ns=frame.born_ns,
            meta=frame.copy_meta(),
        )
        socket.stats.enqueued += 1
        if socket.waiters:
            waiter = socket.waiters.pop(0)
            yield from core.execute(self.costs.socket_wakeup_instructions)
            if ctx is not None:
                # Direct hand-off to a blocked recvmsg: no queue wait;
                # the "app" span starts here and absorbs the wakeup.
                datagram.meta["_obs_rx_ns"] = self.sim.now
            waiter.succeed(datagram)
        elif len(socket.rx_queue) < socket.capacity:
            if ctx is not None:
                datagram.meta["_obs_enq_ns"] = self.sim.now
            socket.rx_queue.append(datagram)
        else:
            socket.stats.dropped += 1
        if ctx is not None:
            obs.record("os.softirq", "os", ctx, softirq_start_ns, self.sim.now)
        return None
