"""NIC-driven scheduling: the software side of Figure 5.

Three pieces:

* :func:`lauberhorn_user_loop` — the user-mode fast-path loop
  (Figure 5 ①): the thread alternates blocked loads between its
  end-point's two CONTROL lines; a returned line *is* the dispatched
  RPC (code pointer + arguments), so per-request software cost is just
  the handler itself.
* :func:`kernel_dispatch_loop` — a conventional kernel thread parked on
  a *kernel* end-point pair; Lauberhorn can dispatch **any** service's
  request to it.  On delivery it context-switches into the target
  process, completes the request in software, and (optionally)
  *promotes* the core: it stays in that process running the user-mode
  loop on the process's own CONTROL lines until a Tryagain/Retire hands
  the core back (Figure 5 ① / ② / ③).
* :class:`NicScheduler` — the control plane: owns the kernel
  dispatchers, turns on NIC-initiated preemption so a backlogged
  service can reclaim a core from an idle user loop, and exposes the
  NIC's load statistics to experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..nic.lauberhorn.endpoint import Endpoint, EndpointKind
from ..nic.lauberhorn.nic import LauberhornNic
from ..rpc.marshal import marshal_args, unmarshal_args
from ..rpc.service import ServiceRegistry
from ..sim.clock import bytes_time_ns
from . import ops
from .kernel import Kernel

__all__ = [
    "lauberhorn_user_loop",
    "lauberhorn_nested_call",
    "kernel_dispatch_loop",
    "NicScheduler",
    "KERNEL_DISPATCH_SW_INSTRUCTIONS",
]

#: Software on the kernel dispatch path per request: validating the
#: delivered line, switching stacks, small bookkeeping (the NIC has
#: already demultiplexed and deserialised).
KERNEL_DISPATCH_SW_INSTRUCTIONS = 400
#: User-loop software around the handler: reading the code pointer and
#: jumping (a couple of registers' worth of work).
USER_LOOP_SW_INSTRUCTIONS = 20


def _gather_payload(nic: LauberhornNic, ep: Endpoint, request_line):
    """Collect a delivered message's full payload (inline / AUX / DMA).

    A generator of thread ops returning the payload bytes.
    """
    if request_line.is_dma:
        payload = nic.read_dma_buffer(request_line.dma_addr)
        # The CPU streams the payload out of DRAM.
        yield ops.ExecNs(
            bytes_time_ns(len(payload), nic.machine.params.cache.dram_bandwidth_bps)
        )
        return payload
    if request_line.n_aux:
        # Stream AUX lines with memory-level parallelism (prefetchable).
        aux_addrs = tuple(ep.aux_addrs[: request_line.n_aux])
        aux_chunks = yield ops.LoadLines(aux_addrs)
        from ..nic.lauberhorn import wire

        payload = wire.assemble_request_payload(request_line, aux_chunks)
        # Drop the (clean) AUX lines now that the payload is assembled,
        # so the NIC can restage them without recalls (DC CIVAC after a
        # streaming read — free locally, saves a recall flit per line).
        for addr in aux_addrs:
            yield ops.EvictLine(addr)
        return payload
    return request_line.inline


def _serve_delivery(nic: LauberhornNic, ep: Endpoint, request_line, registry,
                    parity, software_unmarshal: bool = False):
    """Shared request-serving tail: gather payload, run handler, store
    the response lines.  A generator of thread ops (use ``yield from``).

    ``software_unmarshal=True`` is the ablation that disables the NIC's
    deserialisation offload: the host pays the software cost instead.
    """
    payload = yield from _gather_payload(nic, ep, request_line)

    from ..rpc.marshal import MarshalError
    from ..rpc.service import ServiceError

    try:
        if software_unmarshal:
            from ..rpc.marshal import (
                count_fields,
                software_unmarshal_instructions,
            )

            args = unmarshal_args(payload) if payload else []
            yield ops.Exec(
                software_unmarshal_instructions(count_fields(args), len(payload))
            )
        else:
            # The NIC already deserialised: extracting the values is free.
            args = unmarshal_args(payload) if payload else []
        service, method = registry.resolve(
            request_line.service_id, request_line.method_id
        )
        # "the load executed by the core immediately returns the address
        # to jump to": dispatch is a jump, not a lookup.
        yield ops.Exec(USER_LOOP_SW_INSTRUCTIONS)
        yield ops.Exec(method.cost_for(args))
        results = method.handler(args)
        resp_payload = marshal_args(list(results))
    except (MarshalError, ServiceError) as exc:
        # A malformed payload or stale method table must not kill the
        # worker: answer with an error marker so the protocol's
        # store-then-load sequence still completes.
        yield ops.Exec(USER_LOOP_SW_INSTRUCTIONS)
        resp_payload = marshal_args(["__rpc_error__", type(exc).__name__])

    from ..nic.lauberhorn import wire

    resp_line_capacity = (
        ep.line_bytes - wire.RESP_INLINE_OFFSET
        + len(ep.resp_aux_addrs) * ep.line_bytes
    )
    resp_threshold = (
        nic.response_dma_threshold_bytes
        if nic.response_dma_threshold_bytes is not None
        else nic.dma_threshold_bytes
    )
    if (len(resp_payload) > resp_line_capacity
            or len(resp_payload) >= resp_threshold):
        # Large response: stage it in a host buffer for the NIC to
        # DMA-read (the response-direction twin of the Section 6
        # fallback), and hand the NIC a descriptor line.
        dma_addr = nic.stage_response_dma(resp_payload)
        yield ops.ExecNs(
            bytes_time_ns(
                len(resp_payload), nic.machine.params.cache.dram_bandwidth_bps
            )
        )
        ctrl = wire.encode_response_dma(
            ep.line_bytes, request_line.tag, len(resp_payload), dma_addr
        )
        yield ops.StoreLine(ep.ctrl_addrs[parity], ctrl)
        return len(resp_payload)

    ctrl, aux = wire.encode_response(ep.line_bytes, request_line.tag, resp_payload)
    for index, chunk in enumerate(aux):
        yield ops.StoreLine(ep.resp_aux_addrs[index], chunk)
    yield ops.StoreLine(ep.ctrl_addrs[parity], ctrl)
    return len(resp_payload)


def lauberhorn_nested_call(
    nic: LauberhornNic,
    dst_port: int,
    service_id: int,
    method_id: int,
    args,
):
    """Issue a nested RPC with a continuation end-point (Section 6).

    A thread-op generator for use inside a server worker body::

        results = yield from lauberhorn_nested_call(nic, port, sid, mid, args)

    The outgoing request carries a continuation tag; the reply is
    delivered straight to the continuation end-point's CONTROL line,
    where this code is stalled in a blocked load — the nested call
    costs one PIO transmit plus one fill, with no socket or kernel
    involvement.
    """
    from ..net.packet import build_udp_frame
    from ..nic.lauberhorn import wire
    from ..rpc.message import RpcMessage

    tag, cont = nic.acquire_continuation()
    # "creating this continuation [is] a cheap operation": a pool pop
    # plus registering the tag — one posted store's worth of work.
    yield ops.Exec(30)
    payload = marshal_args(list(args))
    message = RpcMessage.request(service_id, method_id, tag, payload)
    frame = build_udp_frame(
        src_mac=nic.mac,
        dst_mac=nic.mac,  # loops through the switch back to this host
        src_ip=nic.ip,
        dst_ip=nic.ip,
        src_port=50_000 + (tag & 0x3FF),
        dst_port=dst_port,
        payload=message.pack(),
    )

    def _tx(core, thread):
        yield from nic.transmit(frame, core)
        return None

    yield ops.Call(_tx)

    ctrl = cont.ctrl_addrs[0]
    while True:
        line_data = yield ops.LoadLine(ctrl)
        line = wire.decode_request_line(line_data)
        if line.is_tryagain:
            yield ops.EvictLine(ctrl)
            continue
        if not line.is_request:
            yield ops.EvictLine(ctrl)
            continue
        reply_payload = yield from _gather_payload(nic, cont, line)
        yield ops.EvictLine(ctrl)
        nic.release_continuation(tag, cont)
        return unmarshal_args(reply_payload) if reply_payload else []


def lauberhorn_user_loop(
    nic: LauberhornNic,
    ep: Endpoint,
    registry: ServiceRegistry,
    max_requests: Optional[int] = None,
    stop_on_tryagain: bool = False,
    yield_on_tryagain: bool = False,
    software_unmarshal: bool = False,
):
    """Thread body: the user-mode receive loop on one end-point.

    Exits on Retire, on the first Tryagain once ``max_requests`` have
    been served, or (with ``stop_on_tryagain``) on any Tryagain — the
    mode the kernel dispatcher uses for its promoted user phase.
    Returns the number of requests served.
    """
    from ..nic.lauberhorn import wire

    # Claim the end-point so the kernel dispatcher's promotion logic
    # never hijacks lines a dedicated loop is already cycling on.
    owned_here = not ep.owner_label
    if owned_here:
        ep.owner_label = "user-loop"
    try:
        served = yield from _user_loop_body(
            nic, ep, registry, max_requests, stop_on_tryagain,
            yield_on_tryagain, software_unmarshal,
        )
    finally:
        if owned_here:
            ep.owner_label = ""
    return served


def _user_loop_body(
    nic, ep, registry, max_requests, stop_on_tryagain, yield_on_tryagain,
    software_unmarshal,
):
    from ..nic.lauberhorn import wire

    served = 0
    parity = 0
    while True:
        line_data = yield ops.LoadLine(ep.ctrl_addrs[parity])
        line = wire.decode_request_line(line_data)
        if line.is_retire:
            yield ops.EvictLine(ep.ctrl_addrs[parity])
            return served
        if line.is_tryagain:
            # Invalidate so the next load misses (re-arms the NIC).
            yield ops.EvictLine(ep.ctrl_addrs[parity])
            if stop_on_tryagain:
                return served
            if max_requests is not None and served >= max_requests:
                return served
            if yield_on_tryagain:
                yield ops.YieldCpu()
            continue
        if not line.is_request:
            # Spurious content (e.g. first load raced a reset): retry.
            yield ops.EvictLine(ep.ctrl_addrs[parity])
            continue
        yield from _serve_delivery(nic, ep, line, registry, parity,
                                   software_unmarshal=software_unmarshal)
        served += 1
        parity ^= 1
        # Loop: the load on the flipped line signals completion of this
        # request and waits for the next one.


def kernel_dispatch_loop(
    nic: LauberhornNic,
    kernel: Kernel,
    ep: Endpoint,
    registry: ServiceRegistry,
    promote: bool = True,
    max_requests: Optional[int] = None,
):
    """Thread body: Figure 5's NIC-driven kernel dispatcher.

    Runs as a kernel thread parked on a *kernel* end-point.  Returns the
    number of requests served (directly or via promoted user phases).
    """
    from ..nic.lauberhorn import wire

    served = 0
    parity = 0
    while True:
        line_data = yield ops.LoadLine(ep.ctrl_addrs[parity])
        line = wire.decode_request_line(line_data)
        if line.is_retire:
            yield ops.EvictLine(ep.ctrl_addrs[parity])
            return served
        if line.is_tryagain:
            yield ops.EvictLine(ep.ctrl_addrs[parity])
            if max_requests is not None and served >= max_requests:
                return served
            # "As it is a conventional kernel thread, it periodically
            # calls schedule()" (Figure 5 ③).
            yield ops.YieldCpu()
            continue
        if not line.is_request:
            yield ops.EvictLine(ep.ctrl_addrs[parity])
            continue

        # Context switch into the target process's address space.
        yield ops.Exec(kernel.costs.context_switch_instructions)
        yield ops.Exec(KERNEL_DISPATCH_SW_INSTRUCTIONS)
        yield from _serve_delivery(nic, ep, line, registry, parity)
        served += 1
        parity ^= 1
        # Signal completion explicitly (posted doorbell): this thread is
        # about to promote into a user loop, so the implicit
        # load-the-other-line signal would be delayed indefinitely.
        yield nic.completion_signal_op(ep)

        if promote:
            user_ep = _claimable_user_endpoint(nic, line.service_id)
            if user_ep is not None:
                # Promote: stay in this process; run its dedicated
                # user-mode loop until it goes idle (Tryagain).
                user_ep.owner_label = "promoted"
                served += yield from lauberhorn_user_loop(
                    nic, user_ep, registry, stop_on_tryagain=True
                )
                user_ep.owner_label = ""
                # Return to the kernel (syscall + address-space switch).
                yield ops.Syscall("deschedule-user-loop")
                yield ops.Exec(kernel.costs.context_switch_instructions)


def _claimable_user_endpoint(nic: LauberhornNic, service_id: int):
    for candidate in nic._service_endpoints.get(service_id, ()):
        if not candidate.armed and not candidate.owner_label:
            return candidate
    return None


@dataclass
class DispatcherHandle:
    endpoint: Endpoint
    thread: object


class NicScheduler:
    """Control plane tying the kernel and the Lauberhorn NIC together."""

    def __init__(
        self,
        kernel: Kernel,
        nic: LauberhornNic,
        registry: ServiceRegistry,
        n_dispatchers: int = 2,
        promote: bool = True,
        dispatcher_cores: Optional[list[int]] = None,
    ):
        self.kernel = kernel
        self.nic = nic
        self.registry = registry
        self.promote = promote
        self.dispatchers: list[DispatcherHandle] = []
        # NIC-initiated preemption: a backlogged service may reclaim a
        # core whose user loop is idle-armed for a different service.
        nic.preempt_on_backlog = True
        cores = dispatcher_cores or [None] * n_dispatchers
        for index in range(n_dispatchers):
            self.add_dispatcher(
                pinned_core=cores[index] if index < len(cores) else None
            )

    def add_dispatcher(self, pinned_core: Optional[int] = None) -> DispatcherHandle:
        """Park one more kernel thread on a fresh kernel end-point."""
        endpoint = self.nic.create_endpoint(EndpointKind.KERNEL)
        thread = self.kernel.spawn_kernel_thread(
            kernel_dispatch_loop(
                self.nic, self.kernel, endpoint, self.registry, promote=self.promote
            ),
            name=f"lb-dispatch{len(self.dispatchers)}",
            pinned_core=pinned_core,
        )
        handle = DispatcherHandle(endpoint=endpoint, thread=thread)
        self.dispatchers.append(handle)
        return handle

    def retire_dispatcher(self) -> bool:
        """Reclaim a dispatcher core via a Retire message (Section 5.2)."""
        for handle in self.dispatchers:
            if self.nic.retire(handle.endpoint):
                self.dispatchers.remove(handle)
                return True
        return False

    def service_report(self) -> list:
        """The NIC's per-service load view (read over the kernel channel)."""
        return self.nic.load.all()

    def start_autoscaler(
        self,
        interval_ns: float = 500_000.0,
        min_dispatchers: int = 1,
        max_dispatchers: int = 8,
    ):
        """Scale dispatcher cores with load (§5.2: "dynamic scaling of
        the cores used for RPC based on load").

        A kernel control thread wakes every ``interval_ns``, reads the
        NIC's load statistics over the kernel channel, and:

        * **scales up** (spawns a dispatcher on a fresh end-point) when
          requests are queueing with nobody parked to take them;
        * **scales down** (Retire to a parked dispatcher) after an
          interval with no arrivals and more than the minimum parked.

        Returns the control thread.
        """
        if min_dispatchers < 0 or max_dispatchers < max(1, min_dispatchers):
            raise ValueError("bad autoscaler bounds")
        scheduler = self

        def control_body():
            last_decoded = scheduler.nic.lstats.requests_decoded
            while True:
                yield ops.Sleep(interval_ns)
                yield ops.Exec(300)  # read stats over the kernel channel
                nic = scheduler.nic
                arrivals = nic.lstats.requests_decoded - last_decoded
                last_decoded = nic.lstats.requests_decoded
                backlogged = (
                    len(nic.global_backlog)
                    + sum(load.backlog_now for load in nic.load.all())
                )
                parked = sum(
                    1 for handle in scheduler.dispatchers
                    if handle.endpoint.armed
                )
                if (backlogged > 0 and parked == 0
                        and len(scheduler.dispatchers) < max_dispatchers):
                    scheduler.add_dispatcher()
                elif (arrivals == 0 and backlogged == 0
                      and parked == len(scheduler.dispatchers)
                      and len(scheduler.dispatchers) > min_dispatchers):
                    scheduler.retire_dispatcher()

        return self.kernel.spawn_kernel_thread(
            control_body(), name="lb-autoscaler", priority=-1
        )
