"""Processes and threads.

A :class:`OsProcess` is an address space plus bookkeeping; a
:class:`OsThread` is a schedulable entity whose *body* is a generator
over :mod:`repro.os.ops` operations.  The kernel interprets bodies on
cores; thread objects here only hold state and statistics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

__all__ = ["ThreadState", "OsThread", "OsProcess"]


class ThreadState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


@dataclass
class ThreadStats:
    """Per-thread scheduling statistics."""

    scheduled_count: int = 0
    preempted_count: int = 0
    voluntary_yields: int = 0
    blocked_count: int = 0
    cpu_ns: float = 0.0


class OsThread:
    """A kernel-schedulable thread."""

    def __init__(
        self,
        tid: int,
        process: "OsProcess",
        body: Generator,
        name: str = "",
        pinned_core: Optional[int] = None,
        priority: int = 0,
    ):
        self.tid = tid
        self.process = process
        self.body = body
        self.name = name or f"{process.name}/t{tid}"
        self.pinned_core = pinned_core
        self.priority = priority
        self.state = ThreadState.READY
        #: core the thread is currently running on (None when not running)
        self.core_id: Optional[int] = None
        #: value to send into the body generator at next resume
        self.resume_value: Any = None
        self.stats = ThreadStats()
        #: event that fires when the thread exits
        self.exit_event = None  # set by the kernel at spawn
        self.exit_value: Any = None

    @property
    def is_kernel_thread(self) -> bool:
        return self.process.is_kernel

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OsThread {self.name} {self.state.value}>"


class OsProcess:
    """An address space: the unit of context-switch cost and of RPC
    demultiplexing (one service end-point maps to one process)."""

    _KERNEL_PID = 0

    def __init__(self, pid: int, name: str, is_kernel: bool = False):
        self.pid = pid
        self.name = name
        self.is_kernel = is_kernel
        self.threads: list[OsThread] = []
        #: service this process serves, if it is an RPC server process
        self.service = None
        #: opaque per-process annotations used by experiments
        self.meta: dict = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OsProcess {self.pid} {self.name!r}>"
