"""The OS kernel model: per-core dispatch loops interpreting threads.

Each core runs a *core loop* simulation process that:

1. services pending interrupts (charging interrupt entry + handler);
2. picks the next thread from the scheduler;
3. charges the context-switch cost when crossing address spaces;
4. interprets the thread body's :mod:`repro.os.ops` operations until the
   thread blocks, yields, exits, or is preempted at the end of its
   timeslice.

Interrupts are taken at op boundaries — except while the core is
stalled in a coherent :class:`~repro.os.ops.LoadLine` (a blocked load
occupies the core at the hardware level; Section 5.1's reason for the
Tryagain/IPI dance, which :mod:`repro.os.nicsched` implements).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from ..hw.core import Core
from ..hw.machine import Machine
from ..sim.clock import MS
from ..sim.engine import Event
from ..sim.resources import Gate
from . import ops
from .process import OsProcess, OsThread, ThreadState
from .scheduler import Scheduler

__all__ = ["Irq", "Kernel", "KernelError"]


class KernelError(RuntimeError):
    """Inconsistent kernel state (a bug in a model built on the kernel)."""


@dataclass
class Irq:
    """A pending interrupt: a name, an optional handler, extra cost.

    ``handler`` is a generator function ``handler(kernel, core)`` run in
    interrupt context on the interrupted core (e.g. NAPI poll).
    """

    name: str
    handler: Optional[Callable[["Kernel", Core], Generator]] = None
    instructions: int = 0


@dataclass
class KernelStats:
    context_switches: int = 0
    thread_switches: int = 0
    irqs: int = 0
    ipis: int = 0
    preemptions: int = 0
    syscalls: int = 0


class Kernel:
    """The operating system of one simulated machine."""

    def __init__(
        self,
        machine: Machine,
        timeslice_ns: float = 1.0 * MS,
        steal: bool = True,
    ):
        self.machine = machine
        self.sim = machine.sim
        self.costs = machine.params.os_costs
        self.timeslice_ns = timeslice_ns
        self.scheduler = Scheduler(machine.n_cores, steal=steal)
        self.stats = KernelStats()
        self.tracer = machine.tracer

        self.kernel_process = OsProcess(pid=0, name="kernel", is_kernel=True)
        self.processes: list[OsProcess] = [self.kernel_process]
        self._next_pid = 1
        self._next_tid = 1

        self._current: list[Optional[OsThread]] = [None] * machine.n_cores
        self._last_process: list[Optional[OsProcess]] = [None] * machine.n_cores
        self._pending_irqs: list[list[Irq]] = [[] for _ in range(machine.n_cores)]
        self._need_resched: list[bool] = [False] * machine.n_cores
        self._idle_gates = [Gate(self.sim, f"core{i}.idle") for i in range(machine.n_cores)]
        #: set by NetStack when attached
        self.netstack = None
        #: NIC devices attached to this kernel
        self.nics: list[Any] = []
        #: optional flight recorder (repro.obs.flight); None keeps the
        #: dispatch loop free of any observability work beyond one
        #: attribute test
        self.flight = None
        self._started = False

    def bind_metrics(self, registry, prefix: str = "kernel") -> None:
        """Register scheduler/syscall counters on a metrics registry
        (live probe of :class:`KernelStats`, read at snapshot time)."""
        registry.bind(prefix, self.stats)
        registry.probe(prefix, lambda: {
            "processes": len(self.processes),
            "runnable": self.scheduler.total_queued(),
            "idle_cores": len(self.scheduler.idle_cores),
        })
        for core_id in range(self.machine.n_cores):
            registry.probe(f"{prefix}.runq{core_id}", lambda c=core_id: {
                "depth": self.scheduler.queue_length(c),
            })

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn the per-core dispatch loops (idempotent)."""
        if self._started:
            return
        self._started = True
        for core in self.machine.cores:
            self.sim.process(self._core_loop(core), name=f"core{core.id}-loop")

    def register_nic(self, nic: Any) -> None:
        self.nics.append(nic)

    # -- process/thread management --------------------------------------------

    def spawn_process(self, name: str) -> OsProcess:
        process = OsProcess(pid=self._next_pid, name=name)
        self._next_pid += 1
        self.processes.append(process)
        return process

    def spawn_thread(
        self,
        process: OsProcess,
        body: Generator,
        name: str = "",
        pinned_core: Optional[int] = None,
        priority: int = 0,
    ) -> OsThread:
        """Create a thread and make it runnable."""
        thread = OsThread(
            tid=self._next_tid,
            process=process,
            body=body,
            name=name,
            pinned_core=pinned_core,
            priority=priority,
        )
        self._next_tid += 1
        thread.exit_event = Event(self.sim)
        thread.pending_charge_instructions = 0
        process.threads.append(thread)
        self._make_runnable(thread)
        return thread

    def spawn_kernel_thread(
        self,
        body: Generator,
        name: str = "",
        pinned_core: Optional[int] = None,
        priority: int = 0,
    ) -> OsThread:
        return self.spawn_thread(
            self.kernel_process, body, name=name, pinned_core=pinned_core,
            priority=priority,
        )

    def current_thread(self, core_id: int) -> Optional[OsThread]:
        return self._current[core_id]

    # -- wakeups and interrupts -------------------------------------------------

    def wake(self, thread: OsThread, value: Any = None) -> None:
        """Transition a blocked thread to READY and place it."""
        if thread.state is not ThreadState.BLOCKED:
            raise KernelError(
                f"wake of {thread.name} in state {thread.state.value}"
            )
        thread.resume_value = value
        self._make_runnable(thread)

    def kill_thread(self, thread: OsThread) -> bool:
        """Forcibly terminate ``thread`` (fault injection / supervision).

        Returns True when the thread was torn down, False when it could
        not be killed *right now*: a RUNNING thread is mid-op on a core
        (killing it would corrupt the core's dispatch loop — callers
        retry later), and a READY thread caught in the dequeue-to-run
        window is treated the same way.  A killed thread's pending wake
        callbacks are neutered by the DONE state, its exit event fires
        (with None), and its body generator is closed so ``finally``
        blocks run.
        """
        if thread.state is ThreadState.DONE:
            return False
        if thread.state is ThreadState.RUNNING:
            return False
        if thread.state is ThreadState.READY:
            if not self.scheduler.remove(thread):
                return False  # being dispatched right now; retry later
        thread.state = ThreadState.DONE
        thread.exit_value = None
        if thread.exit_event is not None and not thread.exit_event.triggered:
            thread.exit_event.succeed(None)
        thread.body.close()
        return True

    def _make_runnable(self, thread: OsThread) -> None:
        core_id = self.scheduler.enqueue(thread)
        self._kick_core(core_id)

    def _kick_core(self, core_id: int) -> None:
        if core_id in self.scheduler.idle_cores:
            self._idle_gates[core_id].open()

    def deliver_irq(self, core_id: int, irq: Irq) -> None:
        """Queue an interrupt for ``core_id`` and kick it if idle.

        A core stalled in a blocked load will only notice once the load
        completes (hardware semantics).
        """
        self.stats.irqs += 1
        self._pending_irqs[core_id].append(irq)
        self._kick_core(core_id)

    def send_ipi(
        self,
        to_core: int,
        name: str = "ipi",
        handler: Optional[Callable[["Kernel", Core], Generator]] = None,
        resched: bool = True,
    ) -> None:
        """Deliver an inter-processor interrupt after the IPI latency."""
        self.stats.ipis += 1

        def arrive():
            yield self.sim.timeout(self.costs.ipi_deliver_ns)
            if resched:
                self._need_resched[to_core] = True
            self.deliver_irq(to_core, Irq(name=name, handler=handler))

        self.sim.process(arrive())

    def preempt_core(self, core_id: int, name: str = "resched-ipi") -> None:
        """Ask ``core_id`` to reschedule as soon as it can take an IRQ."""
        self.send_ipi(core_id, name=name, resched=True)

    # -- core loop -----------------------------------------------------------------

    def _core_loop(self, core: Core):
        while True:
            if self._pending_irqs[core.id]:
                yield from self._service_irqs(core)
                continue
            thread = self.scheduler.pick_next(core.id)
            if thread is None:
                self.scheduler.idle_cores.add(core.id)
                core.context = "idle"
                yield self._idle_gates[core.id].wait()
                self.scheduler.idle_cores.discard(core.id)
                continue
            yield from self._dispatch(core, thread)

    def _service_irqs(self, core: Core):
        while self._pending_irqs[core.id]:
            irq = self._pending_irqs[core.id].pop(0)
            previous_context = core.context
            core.context = f"irq:{irq.name}"
            yield from core.execute(
                self.costs.interrupt_entry_instructions + irq.instructions
            )
            if irq.handler is not None:
                yield from irq.handler(self, core)
            core.context = previous_context
        return None

    def _charge_switch(self, core: Core, thread: OsThread):
        """Context-switch cost: full cost across address spaces."""
        if self._last_process[core.id] is not thread.process:
            self.stats.context_switches += 1
            yield from core.execute(self.costs.context_switch_instructions)
            # Tell any scheduling-state subscriber (the Lauberhorn NIC),
            # paying the push cost it declares (one posted line store).
            push_cost = 0
            for nic in self.nics:
                notify = getattr(nic, "on_context_switch", None)
                if notify is not None:
                    notify(core.id, thread.process)
                    push_cost += getattr(nic, "sched_push_instructions", 0)
            if push_cost:
                yield from core.execute(push_cost)
        else:
            yield from core.execute(self.costs.scheduler_pick_instructions)
        self._last_process[core.id] = thread.process
        self.stats.thread_switches += 1
        return None

    def _dispatch(self, core: Core, thread: OsThread):
        flight = self.flight
        if flight is not None:
            flight.note("sched.dispatch", core=core.id, thread=thread.name,
                        queued=self.scheduler.queue_length(core.id))
        yield from self._charge_switch(core, thread)
        thread.state = ThreadState.RUNNING
        thread.core_id = core.id
        thread.stats.scheduled_count += 1
        self._current[core.id] = thread
        core.context = thread.name
        slice_end = self.sim.now + self.timeslice_ns
        run_start = self.sim.now

        if thread.pending_charge_instructions:
            charge = thread.pending_charge_instructions
            thread.pending_charge_instructions = 0
            yield from core.execute(charge)

        try:
            while True:
                # Interrupt window between ops.
                if self._pending_irqs[core.id]:
                    yield from self._service_irqs(core)
                    core.context = thread.name
                if self._need_resched[core.id] or (
                    self.sim.now >= slice_end
                    and self.scheduler.queue_length(core.id) > 0
                ):
                    self._need_resched[core.id] = False
                    self.stats.preemptions += 1
                    thread.stats.preempted_count += 1
                    # Tick/IPI entry plus the resched path.
                    yield from core.execute(
                        self.costs.interrupt_entry_instructions
                        + self.costs.scheduler_pick_instructions
                    )
                    self._park(core, thread, run_start)
                    self.scheduler.enqueue(thread)
                    return None

                try:
                    op = thread.body.send(thread.resume_value)
                except StopIteration as stop:
                    self._park(core, thread, run_start)
                    thread.state = ThreadState.DONE
                    thread.exit_value = stop.value
                    thread.exit_event.succeed(stop.value)
                    return None
                thread.resume_value = None

                outcome = yield from self._execute_op(core, thread, op)
                if outcome == "blocked":
                    self._park(core, thread, run_start)
                    thread.stats.blocked_count += 1
                    return None
                if outcome == "yielded":
                    self._park(core, thread, run_start)
                    thread.stats.voluntary_yields += 1
                    self.scheduler.enqueue(thread)
                    return None
        except BaseException:
            self._park(core, thread, run_start)
            thread.state = ThreadState.DONE
            raise

    def _park(self, core: Core, thread: OsThread, run_start: float) -> None:
        thread.stats.cpu_ns += self.sim.now - run_start
        thread.core_id = None
        self._current[core.id] = None
        core.context = "kernel"

    # -- op execution -----------------------------------------------------------

    def _block_thread(self, thread: OsThread, event: Event) -> None:
        thread.state = ThreadState.BLOCKED

        def on_fire(ev: Event) -> None:
            if thread.state is ThreadState.BLOCKED:
                self.wake(thread, ev._value if ev._ok else None)

        event.add_callback(on_fire)

    def _execute_op(self, core: Core, thread: OsThread, op: ops.ThreadOp):
        """Interpret one op; returns 'ran', 'blocked', or 'yielded'."""
        if isinstance(op, ops.Exec):
            yield from core.execute(op.instructions)
            return "ran"
        if isinstance(op, ops.ExecNs):
            yield from core.busy_ns(op.ns)
            return "ran"
        if isinstance(op, ops.Syscall):
            self.stats.syscalls += 1
            yield from core.execute(self.costs.syscall_instructions)
            return "ran"
        if isinstance(op, ops.YieldCpu):
            yield from core.execute(self.costs.syscall_instructions)
            return "yielded"
        if isinstance(op, ops.Sleep):
            self._block_thread(thread, self.sim.timeout(op.ns))
            return "blocked"
        if isinstance(op, ops.Block):
            self._block_thread(thread, op.event)
            return "blocked"
        if isinstance(op, ops.LoadLine):
            data = yield from core.load_line(op.addr)
            thread.resume_value = data
            return "ran"
        if isinstance(op, ops.LoadLines):
            data = yield from core.load_lines(op.addrs)
            thread.resume_value = data
            return "ran"
        if isinstance(op, ops.StoreLine):
            yield from core.store_line(op.addr, op.data)
            return "ran"
        if isinstance(op, ops.EvictLine):
            yield from core.evict_line(op.addr)
            return "ran"
        if isinstance(op, ops.MmioRead):
            yield from self.machine.link.mmio_read(core)
            return "ran"
        if isinstance(op, ops.MmioWrite):
            yield from self.machine.link.mmio_write(core)
            if op.on_device is not None:
                delay = self.machine.link.posted_delay_ns()
                callback = op.on_device

                def landing():
                    yield self.sim.timeout(delay)
                    callback()

                self.sim.process(landing())
            return "ran"
        if isinstance(op, ops.Call):
            result = yield from op.fn(core, thread)
            thread.resume_value = result
            return "ran"
        if isinstance(op, ops.RecvFromSocket):
            if self.netstack is None:
                raise KernelError("no netstack attached")
            return (yield from self.netstack.sys_recv(core, thread, op.socket))
        if isinstance(op, ops.SendDatagram):
            if self.netstack is None:
                raise KernelError("no netstack attached")
            yield from self.netstack.sys_send(core, thread, op)
            return "ran"
        raise KernelError(f"unknown thread op {op!r}")
