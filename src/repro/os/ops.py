"""Thread operations: the instruction set of the OS model.

A simulated thread body is a Python generator that ``yield``s these op
objects; the kernel's per-core interpreter executes them, charging the
right core for the right amount of time and honouring preemption at op
boundaries.  This mirrors how the real systems differ:

* a Linux worker blocks in ``recvmsg`` (:class:`RecvFromSocket`);
* a kernel-bypass worker busy-polls a queue (:class:`Exec` in a loop);
* a Lauberhorn worker issues a *blocked load* on a CONTROL cache line
  (:class:`LoadLine`) — the op that keeps the **core** occupied but
  consumes no instructions, which is the crux of the paper.

Interrupts are delivered at op boundaries, except that a core stalled
inside :class:`LoadLine` cannot take one until the load completes —
exactly the behaviour Section 5.1 works around with Tryagain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..sim.engine import Event

__all__ = [
    "ThreadOp",
    "Exec",
    "ExecNs",
    "Syscall",
    "Block",
    "YieldCpu",
    "LoadLine",
    "LoadLines",
    "StoreLine",
    "EvictLine",
    "MmioRead",
    "MmioWrite",
    "RecvFromSocket",
    "SendDatagram",
    "Sleep",
    "Call",
]


class ThreadOp:
    """Base class for everything a thread body may yield."""

    __slots__ = ()


@dataclass(frozen=True)
class Exec(ThreadOp):
    """Retire ``instructions`` of straight-line code."""

    instructions: float


@dataclass(frozen=True)
class ExecNs(ThreadOp):
    """Occupy the core (busy) for a fixed duration."""

    ns: float


@dataclass(frozen=True)
class Syscall(ThreadOp):
    """Enter/leave the kernel (charges the syscall path length).

    ``action`` optionally names the syscall for tracing.
    """

    action: str = ""


@dataclass(frozen=True)
class Block(ThreadOp):
    """Block the thread until ``event`` fires; resumes with its value.

    The core is released to run other threads (this is a *thread* block,
    unlike :class:`LoadLine` which is a *core* stall).
    """

    event: Event


@dataclass(frozen=True)
class YieldCpu(ThreadOp):
    """Voluntarily yield the CPU (``sched_yield``/``schedule()``)."""


@dataclass(frozen=True)
class Sleep(ThreadOp):
    """Block the thread for a fixed duration."""

    ns: float


@dataclass(frozen=True)
class LoadLine(ThreadOp):
    """Coherent load of a device-homed cache line.

    The core stalls until the home answers (possibly for a long time —
    the Lauberhorn blocked load); the value sent back into the body is
    the line's bytes.
    """

    addr: int


@dataclass(frozen=True)
class StoreLine(ThreadOp):
    """Coherent store to a device-homed cache line."""

    addr: int
    data: bytes


@dataclass(frozen=True)
class LoadLines(ThreadOp):
    """Coherent loads of several device-homed lines, overlapped.

    Models a core streaming prefetchable lines (AUX payload lines) with
    memory-level parallelism: fills are issued in groups of the core's
    MLP depth rather than one blocking round trip each.  Resumes with
    the list of line contents in address order.
    """

    addrs: tuple[int, ...]


@dataclass(frozen=True)
class EvictLine(ThreadOp):
    """Drop a device-homed line from this core's cache (DC CIVAC-style
    cache maintenance), so the next load misses and re-arms the NIC."""

    addr: int


@dataclass(frozen=True)
class MmioRead(ThreadOp):
    """Uncached read of a device register (full link round trip)."""

    register: str = ""


@dataclass(frozen=True)
class MmioWrite(ThreadOp):
    """Posted write to a device register (doorbell)."""

    register: str = ""
    #: called (in zero sim time) when the write becomes visible at the
    #: device, ``posted_delay_ns`` after the op retires.
    on_device: Optional[Callable[[], None]] = None


@dataclass(frozen=True)
class Call(ThreadOp):
    """Run a device-library generator ``fn(core, thread)`` inline.

    The escape hatch for user-level I/O libraries (e.g. the bypass
    PMD's poll loop) that need to charge the core directly while the
    thread stays RUNNING.  The generator's return value is sent back
    into the thread body.  The thread cannot be preempted inside a
    Call — matching the reality that a busy-polling bypass worker never
    enters the kernel.
    """

    fn: Callable[[Any, Any], Any]


@dataclass(frozen=True)
class RecvFromSocket(ThreadOp):
    """``recvmsg`` on a UDP socket: syscall + block if empty + wakeup."""

    socket: Any


@dataclass(frozen=True)
class SendDatagram(ThreadOp):
    """``sendmsg`` on a UDP socket: syscall + netstack TX + NIC submit."""

    socket: Any
    dst_ip: int
    dst_port: int
    payload: bytes
    meta: dict = field(default_factory=dict)
