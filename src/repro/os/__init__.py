"""Operating system model: kernel, scheduler, netstack (S8/S9)."""

from . import ops
from .kernel import Irq, Kernel, KernelError
from .netstack import Datagram, NetStack, UdpSocket
from .process import OsProcess, OsThread, ThreadState
from .scheduler import Scheduler

__all__ = [
    "Datagram",
    "Irq",
    "Kernel",
    "KernelError",
    "NetStack",
    "OsProcess",
    "OsThread",
    "Scheduler",
    "ThreadState",
    "UdpSocket",
    "ops",
]
