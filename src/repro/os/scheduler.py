"""Per-core run queues with idle-first wake placement.

A deliberately Linux-shaped scheduler: one FIFO run queue per core
(priority buckets within), wake-up placement that prefers the thread's
previous core, then any idle core, then the least-loaded queue; and
round-robin timeslicing driven by the kernel's tick.  Optional work
stealing keeps cores from idling while others queue.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from .process import OsThread, ThreadState

__all__ = ["Scheduler"]


class Scheduler:
    """Run-queue state; the kernel drives it."""

    def __init__(self, n_cores: int, steal: bool = True):
        self.n_cores = n_cores
        self.steal = steal
        self._queues: list[deque[OsThread]] = [deque() for _ in range(n_cores)]
        #: cores currently in the idle loop (maintained by the kernel)
        self.idle_cores: set[int] = set()
        #: per-thread last core, for cache-affine wake placement
        self._last_core: dict[int, int] = {}

    # -- queries -----------------------------------------------------------

    def queue_length(self, core_id: int) -> int:
        return len(self._queues[core_id])

    def total_queued(self) -> int:
        return sum(len(q) for q in self._queues)

    def queue_lengths(self) -> tuple[int, ...]:
        """Per-core run-queue depths (window probe for time series)."""
        return tuple(len(q) for q in self._queues)

    def queued_threads(self, core_id: int) -> tuple[OsThread, ...]:
        return tuple(self._queues[core_id])

    # -- placement -----------------------------------------------------------

    def choose_core(self, thread: OsThread) -> int:
        """Pick the run queue for a waking/new thread."""
        if thread.pinned_core is not None:
            return thread.pinned_core
        last = self._last_core.get(thread.tid)
        if last is not None and last in self.idle_cores:
            return last
        if self.idle_cores:
            return min(self.idle_cores)
        if last is not None:
            return last
        return min(range(self.n_cores), key=lambda c: len(self._queues[c]))

    def enqueue(self, thread: OsThread, core_id: Optional[int] = None) -> int:
        """Make ``thread`` runnable on ``core_id`` (or auto-placed).

        Returns the chosen core so the kernel can kick it if idle.
        """
        if thread.state is ThreadState.DONE:
            raise ValueError(f"cannot enqueue finished thread {thread.name}")
        if core_id is None:
            core_id = self.choose_core(thread)
        thread.state = ThreadState.READY
        queue = self._queues[core_id]
        # Priority 0 is normal; lower numbers run sooner.  FIFO within a
        # priority level: insert before the first lower-priority (higher
        # number) entry.  The tail check keeps the all-equal-priority
        # case O(1) without special-casing priority 0 — appending a
        # priority-0 thread unconditionally would land it behind any
        # lower-priority (> 0) work already queued.
        if not queue or queue[-1].priority <= thread.priority:
            queue.append(thread)
        else:
            for index, queued in enumerate(queue):
                if queued.priority > thread.priority:
                    queue.insert(index, thread)
                    break
            else:
                queue.append(thread)
        return core_id

    def pick_next(self, core_id: int) -> Optional[OsThread]:
        """Pop the next runnable thread for ``core_id``."""
        queue = self._queues[core_id]
        if queue:
            thread = queue.popleft()
        elif self.steal:
            thread = self._steal_for(core_id)
        else:
            thread = None
        if thread is not None:
            self._last_core[thread.tid] = core_id
        return thread

    def _steal_for(self, core_id: int) -> Optional[OsThread]:
        # Never pick the requesting core as its own victim, and leave a
        # victim with a single queued thread alone — taking its only
        # work just moves the imbalance instead of fixing it.
        others = [c for c in range(self.n_cores) if c != core_id]
        if not others:
            return None
        victim = max(others, key=lambda c: len(self._queues[c]))
        queue = self._queues[victim]
        if len(queue) < 2:
            return None
        # Steal only unpinned work, from the tail (coldest).
        for index in range(len(queue) - 1, -1, -1):
            candidate = queue[index]
            if candidate.pinned_core is None:
                del queue[index]
                return candidate
        return None

    def remove(self, thread: OsThread) -> bool:
        """Drop a queued thread (e.g. it was retired); True if found."""
        for queue in self._queues:
            try:
                queue.remove(thread)
                return True
            except ValueError:
                continue
        return False
