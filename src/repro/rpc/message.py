"""RPC wire format.

A fixed 24-byte header followed by marshalled arguments:

```
 0      2     3     4           8          10         12          20          24
 +------+-----+-----+-----------+----------+----------+-----------+-----------+
 | magic|flags|type | service_id| method_id| reserved | request_id|payload_len|
 | u16  | u8  | u8  | u32       | u16      | u16      | u64       | u32       |
 +------+-----+-----+-----------+----------+----------+-----------+-----------+
```

The header is everything a NIC needs to demultiplex a request to a
(service, method) end-point — exactly the information Lauberhorn's
streaming decoders extract in hardware (Section 5.1).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

__all__ = ["RpcType", "RpcHeader", "RpcMessage", "RpcError", "RPC_MAGIC"]

RPC_MAGIC = 0x4C42  # "LB"
_HEADER_FMT = "!HBBIHHQI"
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)
assert _HEADER_SIZE == 24


class RpcError(ValueError):
    """Malformed RPC message."""


class RpcType(enum.IntEnum):
    REQUEST = 0
    RESPONSE = 1
    ERROR = 2


@dataclass(frozen=True)
class RpcHeader:
    """The fixed RPC header."""

    rpc_type: RpcType
    service_id: int
    method_id: int
    request_id: int
    payload_len: int
    flags: int = 0

    SIZE = _HEADER_SIZE

    def pack(self) -> bytes:
        return struct.pack(
            _HEADER_FMT,
            RPC_MAGIC,
            self.flags,
            int(self.rpc_type),
            self.service_id,
            self.method_id,
            0,
            self.request_id,
            self.payload_len,
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "RpcHeader":
        if len(raw) < cls.SIZE:
            raise RpcError(f"RPC header truncated: {len(raw)} B")
        magic, flags, rpc_type, service_id, method_id, _rsvd, request_id, payload_len = (
            struct.unpack(_HEADER_FMT, raw[: cls.SIZE])
        )
        if magic != RPC_MAGIC:
            raise RpcError(f"bad RPC magic: {magic:#06x}")
        try:
            parsed_type = RpcType(rpc_type)
        except ValueError as exc:
            raise RpcError(f"bad RPC type: {rpc_type}") from exc
        return cls(
            rpc_type=parsed_type,
            service_id=service_id,
            method_id=method_id,
            request_id=request_id,
            payload_len=payload_len,
            flags=flags,
        )


@dataclass(frozen=True)
class RpcMessage:
    """A complete RPC message: header plus marshalled payload bytes."""

    header: RpcHeader
    payload: bytes

    def pack(self) -> bytes:
        if self.header.payload_len != len(self.payload):
            raise RpcError(
                f"header says {self.header.payload_len} B, payload is "
                f"{len(self.payload)} B"
            )
        return self.header.pack() + self.payload

    @classmethod
    def unpack(cls, raw: bytes) -> "RpcMessage":
        header = RpcHeader.unpack(raw)
        payload = raw[RpcHeader.SIZE : RpcHeader.SIZE + header.payload_len]
        if len(payload) != header.payload_len:
            raise RpcError(
                f"payload truncated: expected {header.payload_len} B, "
                f"got {len(payload)} B"
            )
        return cls(header=header, payload=payload)

    @classmethod
    def request(
        cls, service_id: int, method_id: int, request_id: int, payload: bytes
    ) -> "RpcMessage":
        return cls(
            RpcHeader(RpcType.REQUEST, service_id, method_id, request_id, len(payload)),
            payload,
        )

    @classmethod
    def response(
        cls, service_id: int, method_id: int, request_id: int, payload: bytes
    ) -> "RpcMessage":
        return cls(
            RpcHeader(
                RpcType.RESPONSE, service_id, method_id, request_id, len(payload)
            ),
            payload,
        )
