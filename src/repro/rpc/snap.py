"""A Snap-style host networking stack (Marty et al., SOSP'19).

Section 2: "Snap, meanwhile, dedicates a subset of the CPU cores to
provide applications a uniform, yet highly configurable, abstraction of
a NIC" — the fourth point in the design space the paper surveys:

* dedicated *engine* cores busy-poll the NIC rings in a microkernel-ish
  user process, doing parse + RPC decode + demultiplex;
* decoded requests travel to per-service *application* workers over
  shared-memory channels (no syscalls on the data path);
* application workers block on their channel (they are schedulable,
  unlike bypass's pinned spinners), run the handler, and push responses
  back to the engine for transmission.

Relative to pure bypass this buys flexibility (apps don't own NIC
queues, workers can share cores) at the price of a cross-core hop in
each direction — which is exactly how it behaves in the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..net.headers import HeaderError
from ..net.packet import parse_udp_frame
from ..os import ops
from ..sim.engine import Event, Simulator
from .marshal import MarshalError, marshal_args, unmarshal_args
from .message import RpcError, RpcMessage, RpcType
from .server import RPC_HEADER_DECODE_INSTRUCTIONS, USER_PARSE_INSTRUCTIONS, UserNetContext
from .service import ServiceError, ServiceRegistry

__all__ = ["SnapChannel", "SnapEngine", "snap_engine_body", "snap_worker_body"]

#: shared-memory enqueue/dequeue cost (cache-line ping-pong, no syscall)
CHANNEL_OP_INSTRUCTIONS = 120
#: engine-side per-response transmit bookkeeping
ENGINE_TX_INSTRUCTIONS = 150


@dataclass
class _Work:
    """One decoded request travelling engine -> worker."""

    message: RpcMessage
    reply_ip: int
    reply_port: int
    src_port: int
    #: frame metadata carried through to the response (request id,
    #: trace context, observability stamps)
    meta: dict = field(default_factory=dict)


@dataclass
class SnapChannel:
    """A shared-memory SPSC channel with blocking consumers."""

    sim: Simulator
    items: list = field(default_factory=list)
    waiters: list = field(default_factory=list)
    enqueued: int = 0

    def push(self, item) -> None:
        self.enqueued += 1
        if self.waiters:
            self.waiters.pop(0).succeed(item)
        else:
            self.items.append(item)

    def pop_event(self) -> Event:
        event = Event(self.sim)
        if self.items:
            event.succeed(self.items.pop(0))
        else:
            self.waiters.append(event)
        return event


class SnapEngine:
    """Shared state between the engine core(s) and the workers."""

    def __init__(self, sim: Simulator, registry: ServiceRegistry,
                 netctx: UserNetContext):
        from ..sim.resources import Gate

        self.sim = sim
        self.registry = registry
        self.netctx = netctx
        #: service_id -> request channel
        self.request_channels: dict[int, SnapChannel] = {}
        #: response frames travelling worker -> engine
        self.response_frames: list = []
        #: wakes the engine's unified poll when a response is queued
        self.wake_gate = Gate(sim, "snap-engine")
        self.decode_errors = 0
        self.no_service = 0

    def channel_for(self, service_id: int) -> SnapChannel:
        channel = self.request_channels.get(service_id)
        if channel is None:
            channel = SnapChannel(self.sim)
            self.request_channels[service_id] = channel
        return channel

    def push_response(self, frame) -> None:
        self.response_frames.append(frame)
        self.wake_gate.open()


def _engine_poll_op(nic, queue_list, engine: SnapEngine):
    """Unified busy-poll over NIC rings *and* the response channel.

    Returns ("rx", frame) or ("tx", frame); charges spin time like the
    PMD poll (a Snap engine core is always hot).
    """

    def poll(core, thread):
        from ..sim.engine import AnyOf

        params = nic.params
        sweep = params.pmd_poll_instructions * (len(queue_list) + 1)
        quantum_ns = 1_000_000.0
        while True:
            if engine.response_frames:
                yield from core.execute(CHANNEL_OP_INSTRUCTIONS)
                return "tx", engine.response_frames.pop(0)
            ready = next((q for q in queue_list if q.ring), None)
            if ready is not None:
                frame = ready.ring.pop(0)
                yield from core.execute(sweep + params.pmd_rx_instructions)
                return "rx", frame
            segment_start = nic.sim.now
            waits = [q.gate.wait() for q in queue_list]
            waits.append(engine.wake_gate.wait())
            quantum = nic.sim.timeout(quantum_ns)
            waits.append(quantum)
            yield AnyOf(nic.sim, waits)
            quantum.cancel()  # no-op if the quantum itself fired
            waited = nic.sim.now - segment_start
            if waited > 0:
                core.counters.busy_ns += waited
                per_sweep_ns = core.instructions_ns(sweep)
                core.counters.instructions += int(waited / per_sweep_ns * sweep)

    return ops.Call(poll)


def snap_engine_body(nic, queues, engine: SnapEngine):
    """Thread body for a dedicated engine core: poll NIC rings and the
    response channel, decode, demultiplex, transmit."""
    queue_list = list(queues)
    while True:
        kind, frame = yield _engine_poll_op(nic, queue_list, engine)
        if kind == "tx":
            yield ops.Exec(ENGINE_TX_INSTRUCTIONS)

            def _tx(core, thread, frame=frame):
                yield from nic.transmit(frame, core)
                return None

            yield ops.Call(_tx)
            continue
        if nic.obs is not None and frame.peek_meta("obs") is not None:
            # Host receipt: the "app" span runs from the engine's ring
            # pop until the response re-enters nic.transmit — both
            # channel hops and the worker land inside it.
            frame.meta["_obs_rx_ns"] = nic.sim.now
        yield ops.Exec(USER_PARSE_INSTRUCTIONS + RPC_HEADER_DECODE_INSTRUCTIONS)
        try:
            parsed = parse_udp_frame(frame)
            message = RpcMessage.unpack(parsed.payload)
        except (HeaderError, RpcError):
            engine.decode_errors += 1
            continue
        if message.header.rpc_type is not RpcType.REQUEST:
            continue
        try:
            service = engine.registry.by_port(parsed.udp.dst_port)
        except ServiceError:
            engine.no_service += 1
            continue
        yield ops.Exec(CHANNEL_OP_INSTRUCTIONS)
        engine.channel_for(service.service_id).push(
            _Work(
                message=message,
                reply_ip=parsed.ip.src,
                reply_port=parsed.udp.src_port,
                src_port=parsed.udp.dst_port,
                meta=frame.copy_meta(),
            )
        )


def snap_worker_body(engine: SnapEngine, service, max_requests=None):
    """Thread body for one service's application worker: block on the
    channel, run the handler, hand the response to the engine."""
    channel = engine.channel_for(service.service_id)
    served = 0
    while max_requests is None or served < max_requests:
        work = yield ops.Block(channel.pop_event())
        yield ops.Exec(CHANNEL_OP_INSTRUCTIONS)
        message = work.message
        try:
            args = unmarshal_args(message.payload) if message.payload else []
            method = service.method(message.header.method_id)
            from .marshal import (
                count_fields,
                software_marshal_instructions,
                software_unmarshal_instructions,
            )

            yield ops.Exec(software_unmarshal_instructions(
                count_fields(args), len(message.payload)))
            yield ops.Exec(method.cost_for(args))
            results = method.handler(args)
            payload = marshal_args(list(results))
            yield ops.Exec(software_marshal_instructions(
                count_fields(results), len(payload)))
        except (MarshalError, ServiceError) as exc:
            payload = marshal_args(["__rpc_error__", type(exc).__name__])
        response = RpcMessage.response(
            message.header.service_id,
            message.header.method_id,
            message.header.request_id,
            payload,
        )
        frame = engine.netctx.build_frame(
            src_port=work.src_port,
            dst_ip=work.reply_ip,
            dst_port=work.reply_port,
            payload=response.pack(),
            meta=dict(work.meta),
        )
        yield ops.Exec(CHANNEL_OP_INSTRUCTIONS)
        engine.push_response(frame)
        served += 1
    return served
