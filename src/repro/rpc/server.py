"""Server-side RPC worker bodies for the baseline stacks.

Two of the three server flavours live here (the Lauberhorn flavour is
in :mod:`repro.os.nicsched`, since it is entangled with scheduling):

* :func:`linux_udp_worker` — the conventional path: blocking
  ``recvmsg`` on a kernel UDP socket, software unmarshal, handler,
  software marshal, ``sendmsg``.
* :func:`bypass_worker` — the kernel-bypass path: busy-poll a
  user-space ring, parse the raw frame in user space, software
  unmarshal, handler, marshal, PMD transmit.  No kernel involvement
  after setup.

Both bodies charge every step explicitly and emit ``rxstep`` trace
spans so experiment E2 can attribute cycles to the paper's Section 2
steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net.headers import HeaderError, MacAddress
from ..net.packet import Frame, build_udp_frame, parse_udp_frame
from ..os import ops
from ..sim.trace import Tracer
from .marshal import (
    MarshalError,
    count_fields,
    marshal_args,
    software_marshal_instructions,
    software_unmarshal_instructions,
    unmarshal_args,
)
from .message import RpcError, RpcMessage, RpcType
from .service import ServiceError, ServiceRegistry

__all__ = ["UserNetContext", "linux_udp_worker", "bypass_worker",
           "RPC_HEADER_DECODE_INSTRUCTIONS"]

#: Software cost of validating/decoding the 24 B RPC header.
RPC_HEADER_DECODE_INSTRUCTIONS = 80
#: User-space Ethernet/IP/UDP parse cost in a bypass stack (no skb,
#: just pointer arithmetic and checksum validation).
USER_PARSE_INSTRUCTIONS = 180


@dataclass
class UserNetContext:
    """Network identity for user-space (bypass) frame construction."""

    ip: int
    mac: MacAddress
    arp: dict[int, MacAddress]

    def build_frame(self, src_port, dst_ip, dst_port, payload, meta=None) -> Frame:
        dst_mac = self.arp.get(dst_ip)
        if dst_mac is None:
            raise KeyError(f"no neighbour entry for {dst_ip:#010x}")
        return build_udp_frame(
            src_mac=self.mac,
            dst_mac=dst_mac,
            src_ip=self.ip,
            dst_ip=dst_ip,
            src_port=src_port,
            dst_port=dst_port,
            payload=payload,
            meta=dict(meta or {}),
        )


def _execute_rpc(registry: ServiceRegistry, message: RpcMessage):
    """Resolve and run the handler in zero sim time; returns
    (method, args, result_payload, unmarshal_cost, handler_cost,
    marshal_cost) so the caller can charge them.  Unmarshal/marshal
    costs include software AEAD open/seal for encrypted services."""
    from ..net.crypto import software_crypto_instructions

    service, method = registry.resolve(
        message.header.service_id, message.header.method_id
    )
    args = unmarshal_args(message.payload)
    unmarshal_cost = software_unmarshal_instructions(
        count_fields(args), len(message.payload)
    )
    handler_cost = method.cost_for(args)
    results = method.handler(args)
    result_payload = marshal_args(list(results))
    marshal_cost = software_marshal_instructions(
        count_fields(results), len(result_payload)
    )
    if service.encrypted:
        unmarshal_cost += software_crypto_instructions(len(message.payload))
        marshal_cost += software_crypto_instructions(len(result_payload))
    return method, args, result_payload, unmarshal_cost, handler_cost, marshal_cost


def linux_udp_worker(
    socket,
    registry: ServiceRegistry,
    tracer: Optional[Tracer] = None,
    max_requests: Optional[int] = None,
):
    """Thread body: the classic kernel-socket RPC server loop."""
    served = 0
    while max_requests is None or served < max_requests:
        datagram = yield ops.RecvFromSocket(socket)
        span = tracer.span("rxstep", "app", stack="linux") if tracer else None
        try:
            message = RpcMessage.unpack(datagram.payload)
        except RpcError:
            continue
        if message.header.rpc_type is not RpcType.REQUEST:
            continue
        yield ops.Exec(RPC_HEADER_DECODE_INSTRUCTIONS)
        try:
            (_method, _args, result_payload, unmarshal_cost, handler_cost,
             marshal_cost) = _execute_rpc(registry, message)
        except (MarshalError, ServiceError) as exc:
            result_payload = marshal_args(["__rpc_error__", type(exc).__name__])
            unmarshal_cost = handler_cost = 0
            marshal_cost = RPC_HEADER_DECODE_INSTRUCTIONS
        yield ops.Exec(unmarshal_cost)
        yield ops.Exec(handler_cost)
        yield ops.Exec(marshal_cost)
        response = RpcMessage.response(
            message.header.service_id,
            message.header.method_id,
            message.header.request_id,
            result_payload,
        )
        yield ops.SendDatagram(
            socket,
            dst_ip=datagram.src_ip,
            dst_port=datagram.src_port,
            payload=response.pack(),
            meta=dict(datagram.meta),
        )
        if span:
            span.close(request_id=message.header.request_id)
        served += 1
    return served


def bypass_worker(
    nic,
    queue,
    netctx: UserNetContext,
    registry: ServiceRegistry,
    tracer: Optional[Tracer] = None,
    max_requests: Optional[int] = None,
):
    """Thread body: the kernel-bypass (PMD) RPC server loop.

    Pin the thread running this body to a dedicated core; it never
    blocks, so anything sharing the core starves — which is exactly the
    deployment model (and limitation) of bypass stacks.
    """
    multi_queue = isinstance(queue, (list, tuple))
    served = 0
    while max_requests is None or served < max_requests:
        if multi_queue:
            frame = yield nic.poll_many_op(queue)
        else:
            frame = yield nic.poll_op(queue)
        span = tracer.span("rxstep", "app", stack="bypass") if tracer else None
        yield ops.Exec(USER_PARSE_INSTRUCTIONS)
        try:
            parsed = parse_udp_frame(frame)
            message = RpcMessage.unpack(parsed.payload)
        except (HeaderError, RpcError):
            continue
        if message.header.rpc_type is not RpcType.REQUEST:
            continue
        yield ops.Exec(RPC_HEADER_DECODE_INSTRUCTIONS)
        try:
            (_method, _args, result_payload, unmarshal_cost, handler_cost,
             marshal_cost) = _execute_rpc(registry, message)
        except (MarshalError, ServiceError) as exc:
            result_payload = marshal_args(["__rpc_error__", type(exc).__name__])
            unmarshal_cost = handler_cost = 0
            marshal_cost = RPC_HEADER_DECODE_INSTRUCTIONS
        yield ops.Exec(unmarshal_cost)
        yield ops.Exec(handler_cost)
        yield ops.Exec(marshal_cost)
        response = RpcMessage.response(
            message.header.service_id,
            message.header.method_id,
            message.header.request_id,
            result_payload,
        )
        out = netctx.build_frame(
            src_port=parsed.udp.dst_port,
            dst_ip=parsed.ip.src,
            dst_port=parsed.udp.src_port,
            payload=response.pack(),
            meta=frame.copy_meta(),
        )

        def _tx(core, thread, out=out):
            yield from nic.transmit(out, core)
            return None

        yield ops.Call(_tx)
        if span:
            span.close(request_id=message.header.request_id)
        served += 1
    return served
