"""RPC layer: wire format, marshalling, services (S10)."""

from .marshal import (
    MarshalError,
    count_fields,
    marshal_args,
    software_marshal_instructions,
    software_unmarshal_instructions,
    unmarshal_args,
)
from .message import RPC_MAGIC, RpcError, RpcHeader, RpcMessage, RpcType
from .service import MethodDef, ServiceDef, ServiceError, ServiceRegistry

__all__ = [
    "MarshalError",
    "MethodDef",
    "RPC_MAGIC",
    "RpcError",
    "RpcHeader",
    "RpcMessage",
    "RpcType",
    "ServiceDef",
    "ServiceError",
    "ServiceRegistry",
    "count_fields",
    "marshal_args",
    "software_marshal_instructions",
    "software_unmarshal_instructions",
    "unmarshal_args",
]
