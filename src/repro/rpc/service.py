"""Service and method registry.

A *service* is the unit of demultiplexing (one UDP port, one process);
a *method* is the unit of dispatch (one handler function, one code
pointer).  The registry holds exactly the information the paper says
the OS/application provide to Lauberhorn "in advance" (Section 5.1):
for each (service, method), the *code pointer* and *data pointer* the
NIC hands the CPU so it can jump straight into the handler.

Handler compute cost is explicit (`cost_instructions`), since the
simulation charges CPU time rather than running real handler code; the
handler function itself runs in zero simulated time to produce the
response *values*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

__all__ = ["MethodDef", "ServiceDef", "ServiceRegistry", "ServiceError"]


class ServiceError(KeyError):
    """Unknown service or method."""


#: Synthetic virtual address layout for handler entry points: readable
#: in traces, unique per (service, method).
_CODE_BASE = 0x4000_0000_0000
_DATA_BASE = 0x7F00_0000_0000


@dataclass
class MethodDef:
    """One RPC method: handler + cost model + synthetic pointers."""

    method_id: int
    name: str
    handler: Callable[[Sequence[Any]], Sequence[Any]]
    #: CPU instructions the handler body consumes; either a constant or
    #: a callable of the (unmarshalled) argument list.
    cost_instructions: int | Callable[[Sequence[Any]], int] = 1000
    code_ptr: int = 0

    def cost_for(self, args: Sequence[Any]) -> int:
        if callable(self.cost_instructions):
            return int(self.cost_instructions(args))
        return int(self.cost_instructions)


@dataclass
class ServiceDef:
    """One RPC service: a UDP port plus a method table."""

    service_id: int
    name: str
    udp_port: int
    methods: dict[int, MethodDef] = field(default_factory=dict)
    data_ptr: int = 0
    #: payloads are AEAD-protected (see repro.net.crypto)
    encrypted: bool = False

    def method(self, method_id: int) -> MethodDef:
        method = self.methods.get(method_id)
        if method is None:
            raise ServiceError(
                f"service {self.name!r} has no method {method_id}"
            )
        return method


class ServiceRegistry:
    """All services on a machine, indexed by id and by UDP port."""

    def __init__(self):
        self._by_id: dict[int, ServiceDef] = {}
        self._by_port: dict[int, ServiceDef] = {}
        self._next_service_id = 1

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self):
        return iter(self._by_id.values())

    def create_service(
        self, name: str, udp_port: int, encrypted: bool = False
    ) -> ServiceDef:
        """Register a new service on ``udp_port``."""
        if udp_port in self._by_port:
            raise ValueError(f"UDP port {udp_port} already bound")
        service = ServiceDef(
            service_id=self._next_service_id,
            name=name,
            udp_port=udp_port,
            data_ptr=_DATA_BASE + self._next_service_id * 0x10000,
            encrypted=encrypted,
        )
        self._next_service_id += 1
        self._by_id[service.service_id] = service
        self._by_port[udp_port] = service
        return service

    def add_method(
        self,
        service: ServiceDef,
        name: str,
        handler: Callable[[Sequence[Any]], Sequence[Any]],
        cost_instructions: int | Callable[[Sequence[Any]], int] = 1000,
        method_id: Optional[int] = None,
    ) -> MethodDef:
        """Attach a method to ``service``."""
        if method_id is None:
            method_id = len(service.methods) + 1
        if method_id in service.methods:
            raise ValueError(
                f"method id {method_id} already used in {service.name!r}"
            )
        method = MethodDef(
            method_id=method_id,
            name=name,
            handler=handler,
            cost_instructions=cost_instructions,
            code_ptr=_CODE_BASE
            + service.service_id * 0x100000
            + method_id * 0x1000,
        )
        service.methods[method_id] = method
        return method

    def by_id(self, service_id: int) -> ServiceDef:
        service = self._by_id.get(service_id)
        if service is None:
            raise ServiceError(f"unknown service id {service_id}")
        return service

    def by_port(self, udp_port: int) -> ServiceDef:
        service = self._by_port.get(udp_port)
        if service is None:
            raise ServiceError(f"no service on UDP port {udp_port}")
        return service

    def resolve(self, service_id: int, method_id: int) -> tuple[ServiceDef, MethodDef]:
        service = self.by_id(service_id)
        return service, service.method(method_id)
