"""Argument marshalling, with software and accelerator cost models.

The wire encoding is a small tag-length-value scheme good enough to
carry realistic microservice arguments (ints, floats, byte strings,
text, lists).  What matters for the reproduction is not the encoding
itself but the *cost model*: deserialisation is one of the receive-path
steps (step 10 in Section 2) that Lauberhorn moves into NIC hardware
using Optimus-Prime-style transformation engines, while kernel and
bypass stacks pay for it in software on the critical path.

* :func:`software_unmarshal_instructions` — instructions a CPU spends
  deserialising a payload (per-message fixed cost + per-field + per-byte),
  calibrated to the tens-of-ns-per-small-message regime reported by the
  serialisation-accelerator literature (Cereal, Optimus Prime).
* The NIC-side cost is time-based and lives in
  :class:`~repro.hw.params.NicParams` (``deserialize_ns_per_64b``).
"""

from __future__ import annotations

import struct
from typing import Any, Sequence

__all__ = [
    "MarshalError",
    "marshal_args",
    "unmarshal_args",
    "software_marshal_instructions",
    "software_unmarshal_instructions",
    "count_fields",
]


class MarshalError(ValueError):
    """Malformed marshalled payload."""


_TAG_INT = 1
_TAG_BYTES = 2
_TAG_STR = 3
_TAG_FLOAT = 4
_TAG_LIST = 5
_TAG_NONE = 6
_TAG_BOOL = 7


def marshal_args(args: Sequence[Any]) -> bytes:
    """Encode a sequence of arguments into payload bytes."""
    if len(args) > 255:
        raise MarshalError(f"too many arguments: {len(args)}")
    out = bytearray([len(args)])
    for arg in args:
        out += _encode(arg)
    return bytes(out)


def unmarshal_args(payload: bytes) -> list[Any]:
    """Decode payload bytes back into a list of arguments."""
    if not payload:
        raise MarshalError("empty payload")
    count = payload[0]
    offset = 1
    args: list[Any] = []
    for _ in range(count):
        value, offset = _decode(payload, offset)
        args.append(value)
    if offset != len(payload):
        raise MarshalError(f"{len(payload) - offset} trailing bytes")
    return args


def _encode(value: Any) -> bytes:
    # bool must be tested before int (bool is an int subclass).
    if value is None:
        return bytes([_TAG_NONE])
    if isinstance(value, bool):
        return bytes([_TAG_BOOL, 1 if value else 0])
    if isinstance(value, int):
        return bytes([_TAG_INT]) + struct.pack("!q", value)
    if isinstance(value, float):
        return bytes([_TAG_FLOAT]) + struct.pack("!d", value)
    if isinstance(value, bytes):
        return bytes([_TAG_BYTES]) + struct.pack("!I", len(value)) + value
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return bytes([_TAG_STR]) + struct.pack("!I", len(raw)) + raw
    if isinstance(value, (list, tuple)):
        if len(value) > 0xFFFF:
            raise MarshalError(f"list too long: {len(value)}")
        out = bytearray([_TAG_LIST]) + struct.pack("!H", len(value))
        for item in value:
            out += _encode(item)
        return bytes(out)
    raise MarshalError(f"unsupported argument type: {type(value).__name__}")


def _need(payload: bytes, offset: int, n: int) -> None:
    if offset + n > len(payload):
        raise MarshalError(f"truncated at offset {offset} (need {n} B)")


def _decode(payload: bytes, offset: int) -> tuple[Any, int]:
    _need(payload, offset, 1)
    tag = payload[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_BOOL:
        _need(payload, offset, 1)
        return bool(payload[offset]), offset + 1
    if tag == _TAG_INT:
        _need(payload, offset, 8)
        return struct.unpack("!q", payload[offset : offset + 8])[0], offset + 8
    if tag == _TAG_FLOAT:
        _need(payload, offset, 8)
        return struct.unpack("!d", payload[offset : offset + 8])[0], offset + 8
    if tag in (_TAG_BYTES, _TAG_STR):
        _need(payload, offset, 4)
        length = struct.unpack("!I", payload[offset : offset + 4])[0]
        offset += 4
        _need(payload, offset, length)
        raw = payload[offset : offset + length]
        offset += length
        return (raw if tag == _TAG_BYTES else raw.decode("utf-8")), offset
    if tag == _TAG_LIST:
        _need(payload, offset, 2)
        count = struct.unpack("!H", payload[offset : offset + 2])[0]
        offset += 2
        items = []
        for _ in range(count):
            item, offset = _decode(payload, offset)
            items.append(item)
        return items, offset
    raise MarshalError(f"unknown tag {tag} at offset {offset - 1}")


def count_fields(args: Sequence[Any]) -> int:
    """Number of leaf fields, counting list elements individually."""
    total = 0
    for arg in args:
        if isinstance(arg, (list, tuple)):
            total += count_fields(arg)
        else:
            total += 1
    return total


# Software (de)serialisation path-length model.  Calibrated against the
# per-message overheads motivating the accelerator line of work: a small
# protobuf-like message costs a few hundred ns of CPU.
_FIXED_INSTRUCTIONS = 120
_PER_FIELD_INSTRUCTIONS = 40
_PER_BYTE_INSTRUCTIONS = 0.6


def software_marshal_instructions(n_fields: int, n_bytes: int) -> int:
    """Instructions to serialise ``n_fields`` spanning ``n_bytes``."""
    return int(
        _FIXED_INSTRUCTIONS
        + _PER_FIELD_INSTRUCTIONS * n_fields
        + _PER_BYTE_INSTRUCTIONS * n_bytes
    )


def software_unmarshal_instructions(n_fields: int, n_bytes: int) -> int:
    """Instructions to deserialise; slightly dearer than serialising
    (validation, allocation)."""
    return int(
        _FIXED_INSTRUCTIONS * 1.5
        + _PER_FIELD_INSTRUCTIONS * 1.25 * n_fields
        + _PER_BYTE_INSTRUCTIONS * n_bytes
    )
